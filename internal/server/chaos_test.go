package server_test

// The chaos soak: N concurrent clients replay paper-listing queries
// across all three strategies while rate-based failpoints fire,
// requests are randomly canceled, per-request timeouts are tightened,
// and session limits flip between tight and generous — all against a
// server with max-inflight 4. Invariants held throughout, under -race:
//
//   - the server sheds (429) instead of queueing unboundedly;
//   - /healthz answers 200 the whole time, including during drain;
//   - every request terminates in exactly one taxonomy code (the
//     outcome ledger equals accepted requests);
//   - after drain, no goroutines leak and the gauges read zero.
//
// MSQL_CHAOS_SECONDS overrides the soak duration (default 2s; CI runs
// a short budget, a nightly soak can run minutes).

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/server"
	"github.com/measures-sql/msql/msql"
	"github.com/measures-sql/msql/msql/client"
)

// chaosQueries replay the paper's workload shapes: plain AGGREGATE
// grouping (Listing 3), context transforms (ALL / SET / VISIBLE /
// WHERE), joins through measure views, and the big-table measure view.
var chaosQueries = []string{
	`SELECT prodName, AGGREGATE(profitMargin) AS profitMargin FROM EnhancedOrders GROUP BY prodName`,
	`SELECT prodName, AGGREGATE(sumRevenue) AS r,
	        sumRevenue / sumRevenue AT (ALL prodName) AS frac
	 FROM OrdersWithRevenue GROUP BY prodName`,
	`SELECT prodName, sumRevenue AT (VISIBLE) AS viz FROM OrdersWithRevenue GROUP BY prodName`,
	`SELECT prodName, sumRevenue AT (WHERE revenue > 3) AS bigOnly FROM OrdersWithRevenue GROUP BY prodName`,
	`SELECT YEAR(orderDate) AS y, AGGREGATE(profitMargin) AS m FROM EnhancedOrders GROUP BY YEAR(orderDate) ORDER BY y`,
	`SELECT b, AGGREGATE(sumA) FROM bigM GROUP BY b ORDER BY b`,
}

var knownCodes = []msql.ErrorCode{
	msql.ErrParse, msql.ErrBind, msql.ErrExpand, msql.ErrRuntime,
	msql.ErrCanceled, msql.ErrTimeout, msql.ErrResourceExhausted,
}

func chaosDuration() time.Duration {
	if s := os.Getenv("MSQL_CHAOS_SECONDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return time.Duration(n) * time.Second
		}
	}
	return 2 * time.Second
}

func TestChaosSoak(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()

	db := testDB(t)
	strategies := []msql.Strategy{msql.StrategyDefault, msql.StrategyMemo, msql.StrategyNaive}

	srv := server.New(db, server.Config{
		MaxInflight: 4,
		MaxQueue:    8,
		QueueWait:   25 * time.Millisecond,
		MaxTimeout:  2 * time.Second,
		// Clients are stopped before drain, so inflight work fits the
		// budget; the drain-deadline path has its own test.
		DrainTimeout: 2 * time.Second,
	})
	ts := httptest.NewServer(srv.Handler())

	// Rate-based fault injection at 1–5%, deterministic per seed.
	exec.SetFailPointRate(exec.FailOperator, 0.01, 101)
	exec.SetFailPointRate(exec.FailSubqueryEval, 0.03, 102)
	exec.SetFailPointRate(exec.FailWorkerStart, 0.01, 103)
	exec.SetFailPointRate(exec.FailServerAccept, 0.05, 104)
	defer exec.ClearFailPoints()

	stop := make(chan struct{})
	healthStop := make(chan struct{})
	var healthFailures atomic.Int64

	// Liveness poller: /healthz must answer 200 for the entire soak,
	// including while overloaded and while draining.
	var pollWg sync.WaitGroup
	pollWg.Add(1)
	go func() {
		defer pollWg.Done()
		hc := &http.Client{Timeout: time.Second}
		for {
			select {
			case <-healthStop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			resp, err := hc.Get(ts.URL + "/healthz")
			if err != nil {
				healthFailures.Add(1)
				continue
			}
			if resp.StatusCode != http.StatusOK {
				healthFailures.Add(1)
			}
			resp.Body.Close()
		}
	}()

	// Config chaos: strategy flips, limits tightening, and plan-cache
	// resizing mid-soak. The per-statement settings snapshot makes the
	// first two safe by contract; SetPlanCacheSize is documented safe
	// while executions are in flight (entries already handed out stay
	// valid), and this soak is what holds it to that.
	cacheSizes := []int{0, 2, 128}
	var chaosWg sync.WaitGroup
	chaosWg.Add(1)
	go func() {
		defer chaosWg.Done()
		rng := rand.New(rand.NewSource(7))
		tight := false
		for i := 0; ; i++ {
			select {
			case <-stop:
				db.SetLimits(msql.Limits{})
				db.SetPlanCacheSize(128)
				return
			case <-time.After(10 * time.Millisecond):
			}
			db.SetStrategy(strategies[rng.Intn(len(strategies))])
			db.SetPlanCacheSize(cacheSizes[rng.Intn(len(cacheSizes))])
			if tight {
				db.SetLimits(msql.Limits{MaxRows: 5000, MaxSubqueryEvals: 60})
			} else {
				db.SetLimits(msql.Limits{})
			}
			tight = !tight
		}
	}()

	// Observed-bounds sampler: the queue gauge must respect MaxQueue.
	var maxQueuedSeen atomic.Int64
	chaosWg.Add(1)
	go func() {
		defer chaosWg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
			c := srv.Counters()
			for {
				seen := maxQueuedSeen.Load()
				if c.Queued <= seen || maxQueuedSeen.CompareAndSwap(seen, c.Queued) {
					break
				}
			}
		}
	}()

	const clients = 32
	var (
		wg             sync.WaitGroup
		successes      atomic.Int64
		taxonomyErrs   atomic.Int64
		clientCanceled atomic.Int64
		requests       atomic.Int64
		preparedOK     atomic.Int64
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + i)))
			c := client.New(ts.URL, client.WithBackoff(client.Backoff{
				Attempts: 3, Base: 2 * time.Millisecond, Max: 15 * time.Millisecond, Seed: int64(i + 1),
			}))
			// Every client (re-)prepares the same named statement —
			// replacement is the protocol's reconnect semantics — and
			// mixes parameterized EXECUTEs into the workload, so the plan
			// cache is hammered concurrently with the resize chaos.
			stmt, _ := c.Prepare(context.Background(),
				"chaosq", `SELECT prodName, AGGREGATE(sumRevenue) AS r FROM OrdersWithRevenue WHERE revenue > $1 GROUP BY prodName ORDER BY prodName`)
			for {
				select {
				case <-stop:
					return
				default:
				}
				requests.Add(1)
				sql := chaosQueries[rng.Intn(len(chaosQueries))]
				ctx, cancel := context.WithCancel(context.Background())
				var opts []client.QueryOption
				if rng.Float64() < 0.25 {
					opts = append(opts, client.WithTimeout(time.Duration(1+rng.Intn(50))*time.Millisecond))
				}
				if rng.Float64() < 0.10 {
					delay := time.Duration(rng.Intn(20)) * time.Millisecond
					time.AfterFunc(delay, cancel)
				}
				var err error
				if stmt != nil && rng.Float64() < 0.30 {
					_, err = stmt.Exec(ctx, rng.Intn(6))
					if err == nil {
						preparedOK.Add(1)
					}
				} else {
					_, err = c.Query(ctx, sql, opts...)
				}
				cancel()
				switch {
				case err == nil:
					successes.Add(1)
				case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
					// Client-side cancellation (possibly mid-request or
					// mid-backoff); also matches round-tripped
					// CANCELED/TIMEOUT taxonomy errors, which is fine —
					// both are legal terminal states.
					clientCanceled.Add(1)
				default:
					var me *msql.Error
					if !errors.As(err, &me) {
						t.Errorf("client %d: non-taxonomy error: %T %v", i, err, err)
						continue
					}
					found := false
					for _, code := range knownCodes {
						if me.Code == code {
							found = true
							break
						}
					}
					if !found {
						t.Errorf("client %d: unknown taxonomy code %v", i, me.Code)
					}
					taxonomyErrs.Add(1)
				}
			}
		}(i)
	}

	time.Sleep(chaosDuration())
	close(stop)
	wg.Wait()
	chaosWg.Wait()
	exec.ClearFailPoints()

	// Graceful drain with the health poller still watching.
	srv.Drain(context.Background())
	time.Sleep(20 * time.Millisecond) // a few health polls against the drained server
	close(healthStop)
	pollWg.Wait()

	cs := srv.Counters()
	pcs := db.PlanCacheStats()
	t.Logf("soak: %v, %d clients: requests=%d successes=%d taxonomy-errors=%d client-canceled=%d prepared-ok=%d",
		chaosDuration(), clients, requests.Load(), successes.Load(), taxonomyErrs.Load(), clientCanceled.Load(), preparedOK.Load())
	t.Logf("plan cache under resize chaos: %+v", pcs)
	t.Logf("server: accepted=%d admitted=%d shed=%d rejected=%d drained=%d killed=%d panics=%d maxQueuedSeen=%d",
		cs.Accepted, cs.Admitted, cs.Shed, cs.Rejected, cs.Drained, cs.DrainKilled, cs.Panics, maxQueuedSeen.Load())

	if healthFailures.Load() != 0 {
		t.Fatalf("/healthz failed %d times during the soak", healthFailures.Load())
	}
	if successes.Load() == 0 {
		t.Fatalf("no request succeeded during the soak")
	}
	if cs.Shed == 0 {
		t.Fatalf("32 clients against max-inflight 4 never shed; admission control did not engage")
	}
	if q := maxQueuedSeen.Load(); q > 8 {
		t.Fatalf("queue gauge reached %d, above MaxQueue=8 — unbounded queueing", q)
	}
	// Exactly one taxonomy outcome per accepted request.
	var outcomes int64
	for code := 0; code < 8; code++ {
		outcomes += srv.OutcomeCount(msql.ErrorCode(code))
	}
	if outcomes != cs.Accepted {
		t.Fatalf("outcome ledger %d != accepted %d: some request ended in zero or two codes", outcomes, cs.Accepted)
	}
	if cs.Inflight != 0 || cs.Queued != 0 {
		t.Fatalf("gauges nonzero after drain: %+v", cs)
	}

	// Zero goroutine leaks once the HTTP plumbing is torn down.
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	waitGoroutinesChaos(t, baseGoroutines)

	// The session is still healthy after everything.
	res, err := db.Query(listing3)
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("post-soak query: rows=%v err=%v", res, err)
	}
}

// waitGoroutinesChaos waits for the goroutine count to drain back to at
// most base+slack (workers and HTTP conns need a beat to unwind).
func waitGoroutinesChaos(t *testing.T, base int) {
	t.Helper()
	const slack = 4
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after drain: %d running, started with %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

var _ = fmt.Sprintf // keep fmt for debug scaffolding edits
