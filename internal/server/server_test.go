package server_test

// Robustness tests for the msqld front end: wire fidelity, deadline
// clamping, overload shedding, panic isolation, and graceful drain.
// The chaos soak lives in chaos_test.go; the overload experiment (E24)
// in overload_test.go.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/paperdata"
	"github.com/measures-sql/msql/internal/server"
	"github.com/measures-sql/msql/internal/sqltypes"
	"github.com/measures-sql/msql/msql"
	"github.com/measures-sql/msql/msql/client"
)

// listing3 is the paper's Listing 3: AGGREGATE over the measure view.
const listing3 = `SELECT prodName, AGGREGATE(profitMargin) AS profitMargin
FROM EnhancedOrders GROUP BY prodName`

// testDB loads the paper schema plus a big table whose measure view
// makes statements run long enough to be reliably in flight.
func testDB(t testing.TB) *msql.DB {
	t.Helper()
	db := msql.Open()
	db.MustExec(paperdata.All)
	db.MustExec(`CREATE TABLE big (a INTEGER, b INTEGER)`)
	rows := make([][]msql.Value, 20000)
	for i := range rows {
		rows[i] = []msql.Value{sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i % 97))}
	}
	if err := db.InsertRows("big", rows); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE VIEW bigM AS SELECT *, SUM(a) AS MEASURE sumA FROM big`)
	return db
}

const slowQuery = `SELECT b, AGGREGATE(sumA) FROM bigM GROUP BY b ORDER BY b`

// slowOperators makes every operator execution take ~1ms, so slowQuery
// runs for on the order of 100ms while staying promptly cancelable.
// The returned gauge records the wall time of the latest operator
// execution — i.e. when the engine last did work — for asserting that
// nothing executes past a drain.
func slowOperators(t testing.TB) *atomic.Int64 {
	t.Helper()
	var lastFire atomic.Int64
	exec.SetFailPoint(exec.FailOperator, func() error {
		lastFire.Store(time.Now().UnixNano())
		time.Sleep(time.Millisecond)
		return nil
	})
	t.Cleanup(exec.ClearFailPoints)
	return &lastFire
}

// startServer wires a Server over db into an httptest listener.
func startServer(t testing.TB, db *msql.DB, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	srv := server.New(db, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func fastBackoff(seed int64) client.Backoff {
	return client.Backoff{Attempts: 4, Base: 2 * time.Millisecond, Max: 20 * time.Millisecond, Seed: seed}
}

func TestServeListing3(t *testing.T) {
	_, ts := startServer(t, testDB(t), server.Config{})
	c := client.New(ts.URL, client.WithBackoff(fastBackoff(1)))

	res, err := c.Query(context.Background(), listing3)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if want := []string{"prodName", "profitMargin"}; strings.Join(res.Columns, ",") != strings.Join(want, ",") {
		t.Fatalf("columns = %v, want %v", res.Columns, want)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (one per product)", len(res.Rows))
	}
	if res.Types[0] != "VARCHAR" {
		t.Fatalf("types[0] = %s, want VARCHAR", res.Types[0])
	}

	// The newline-delimited framing returns the same result.
	var streamed int
	sres, err := c.QueryStream(context.Background(), listing3, func(row []any) error {
		streamed++
		return nil
	})
	if err != nil {
		t.Fatalf("stream query: %v", err)
	}
	if streamed != 3 || len(sres.Rows) != 3 {
		t.Fatalf("streamed %d rows (result %d), want 3", streamed, len(sres.Rows))
	}
	for i := range res.Rows {
		if fmt.Sprint(res.Rows[i]) != fmt.Sprint(sres.Rows[i]) {
			t.Fatalf("row %d differs between framings: %v vs %v", i, res.Rows[i], sres.Rows[i])
		}
	}
}

func TestScriptAndMessageOverWire(t *testing.T) {
	_, ts := startServer(t, testDB(t), server.Config{})
	c := client.New(ts.URL, client.WithBackoff(fastBackoff(1)))
	res, err := c.Query(context.Background(), `CREATE TABLE t (x INTEGER); INSERT INTO t VALUES (1), (2)`)
	if err != nil {
		t.Fatalf("script: %v", err)
	}
	if res.Message == "" || len(res.Rows) != 0 {
		t.Fatalf("want DDL/DML message result, got %+v", res)
	}
	rows, err := c.Query(context.Background(), `SELECT SUM(x) AS s FROM t`)
	if err != nil {
		t.Fatalf("select after script: %v", err)
	}
	if len(rows.Rows) != 1 {
		t.Fatalf("rows = %v", rows.Rows)
	}
}

// TestErrorTaxonomyOverWire: structured errors must round-trip with
// code, phase, offset and hint intact, and non-retryable codes must
// cost exactly one attempt.
func TestErrorTaxonomyOverWire(t *testing.T) {
	srv, ts := startServer(t, testDB(t), server.Config{})
	c := client.New(ts.URL, client.WithBackoff(fastBackoff(1)))

	cases := []struct {
		name string
		sql  string
		code msql.ErrorCode
	}{
		{"parse", `SELEC 1`, msql.ErrParse},
		{"bind", `SELECT nosuchcolumn FROM Orders`, msql.ErrBind},
		{"runtime", `SELECT 9223372036854775807 + 1 FROM Orders`, msql.ErrRuntime},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := srv.Counters().Accepted
			_, err := c.Query(context.Background(), tc.sql)
			if !errors.Is(err, tc.code) {
				t.Fatalf("want %v, got %v", tc.code, err)
			}
			var me *msql.Error
			if !errors.As(err, &me) {
				t.Fatalf("error is not *msql.Error: %v", err)
			}
			if me.Query != tc.sql {
				t.Fatalf("query text not re-attached: %q", me.Query)
			}
			if got := srv.Counters().Accepted - before; got != 1 {
				t.Fatalf("non-retryable %s cost %d attempts, want 1", tc.name, got)
			}
		})
	}

	// Positioned runtime errors keep their byte offset and hint across
	// the wire.
	_, err := c.Query(context.Background(), `SELECT ABS(-9223372036854775807 - 1) FROM Orders`)
	var me *msql.Error
	if !errors.As(err, &me) || me.Code != msql.ErrRuntime {
		t.Fatalf("want positioned runtime error, got %v", err)
	}
	if me.Pos < 0 {
		t.Fatalf("runtime error lost its byte offset over the wire: %+v", me)
	}
}

// TestTimeoutClampOverWire: a client asking for 10s against a server
// clamping at 80ms gets TIMEOUT promptly, unwrapping to
// context.DeadlineExceeded.
func TestTimeoutClampOverWire(t *testing.T) {
	db := testDB(t)
	db.SetStrategy(msql.StrategyNaive) // correlated subqueries keep the statement busy
	slowOperators(t)
	_, ts := startServer(t, db, server.Config{MaxTimeout: 80 * time.Millisecond})
	c := client.New(ts.URL, client.WithBackoff(fastBackoff(1)))

	start := time.Now()
	_, err := c.Query(context.Background(), slowQuery, client.WithTimeout(10*time.Second))
	if !errors.Is(err, msql.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout must unwrap to context.DeadlineExceeded: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("clamped timeout took %v; clamp did not apply", elapsed)
	}
}

// TestOverloadShedding: with 1 execution slot and 1 queue slot, a burst
// of slow statements must shed with 429 + Retry-After instead of
// queueing unboundedly, and the server must stay healthy throughout.
func TestOverloadShedding(t *testing.T) {
	db := testDB(t)
	db.SetStrategy(msql.StrategyNaive)
	slowOperators(t)
	srv, ts := startServer(t, db, server.Config{
		MaxInflight: 1,
		MaxQueue:    1,
		QueueWait:   20 * time.Millisecond,
	})

	// Raw HTTP (no retries) so each request's first-shot outcome is visible.
	noRetry := client.Backoff{Attempts: 1, Base: time.Millisecond, Max: time.Millisecond, Seed: 7}
	const n = 8
	var ok, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := client.New(ts.URL, client.WithBackoff(noRetry))
			_, err := c.Query(context.Background(), slowQuery)
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, msql.ErrResourceExhausted):
				shed.Add(1)
			default:
				t.Errorf("request %d: unexpected error %v", i, err)
			}
		}(i)
	}
	// Liveness while overloaded.
	hc := client.New(ts.URL)
	for i := 0; i < 5; i++ {
		if err := hc.Healthz(context.Background()); err != nil {
			t.Errorf("healthz under load: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()

	if ok.Load() == 0 {
		t.Fatalf("no request succeeded")
	}
	if shed.Load() == 0 {
		t.Fatalf("no request was shed; admission control did not engage")
	}
	c := srv.Counters()
	if c.Shed == 0 {
		t.Fatalf("shed counter is 0; counters = %+v", c)
	}
	if got := c.Admitted + c.Shed + c.Rejected; got != c.Accepted {
		t.Fatalf("admission ledger out of balance: admitted %d + shed %d + rejected %d != accepted %d",
			c.Admitted, c.Shed, c.Rejected, c.Accepted)
	}

	// The Retry-After contract on a raw shed response.
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"sql":"SELECT 1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// (Load is over, so this one likely succeeds; assert the header only
	// when the status is a shed.)
	if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After")
	}
}

// TestPanicIsolation: a panic inside the engine surfaces as one RUNTIME
// error for that request; the server keeps serving everyone else.
func TestPanicIsolation(t *testing.T) {
	db := testDB(t)
	_, ts := startServer(t, db, server.Config{})
	c := client.New(ts.URL, client.WithBackoff(fastBackoff(1)))

	var fired atomic.Bool
	exec.SetFailPoint(exec.FailOperator, func() error {
		if fired.CompareAndSwap(false, true) {
			panic("injected operator panic")
		}
		return nil
	})
	_, err := c.Query(context.Background(), listing3)
	exec.ClearFailPoints()
	if !errors.Is(err, msql.ErrRuntime) {
		t.Fatalf("want ErrRuntime from panic, got %v", err)
	}
	// The session and server remain fully usable.
	res, err := c.Query(context.Background(), listing3)
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("post-panic query: rows=%v err=%v", res, err)
	}
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("healthz after panic: %v", err)
	}
}

// TestGracefulDrain: inflight statements finish inside the drain
// budget, new work is rejected with 503, and nothing runs past Drain's
// return.
func TestGracefulDrain(t *testing.T) {
	db := testDB(t)
	db.SetStrategy(msql.StrategyNaive)
	lastFire := slowOperators(t)
	srv, ts := startServer(t, db, server.Config{
		MaxInflight:  4,
		DrainTimeout: 5 * time.Second,
	})
	c := client.New(ts.URL, client.WithBackoff(client.Backoff{Attempts: 1, Base: time.Millisecond, Max: time.Millisecond, Seed: 3}))

	const inflight = 2
	var wg sync.WaitGroup
	errs := make([]error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Query(context.Background(), slowQuery)
		}(i)
	}
	// Let both statements get admitted before draining.
	waitFor(t, time.Second, func() bool { return srv.Counters().Inflight == inflight })

	srv.Drain(context.Background())
	drainReturned := time.Now()

	// Readiness flips, liveness stays.
	if err := c.Readyz(context.Background()); err == nil {
		t.Fatalf("readyz still OK after drain")
	}
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("healthz failed after drain: %v", err)
	}
	// New work is rejected with the draining contract (503 → retryable,
	// but our client has Attempts=1 so it surfaces directly).
	if _, err := c.Query(context.Background(), `SELECT 1 AS x`); !errors.Is(err, msql.ErrResourceExhausted) {
		t.Fatalf("query against draining server: want ErrResourceExhausted, got %v", err)
	}

	wg.Wait()
	for i := 0; i < inflight; i++ {
		if errs[i] != nil {
			t.Fatalf("inflight statement %d failed during drain: %v", i, errs[i])
		}
	}
	// No engine work ran past Drain's return: the last operator
	// execution predates it.
	if last := time.Unix(0, lastFire.Load()); last.After(drainReturned) {
		t.Fatalf("an operator executed %v after Drain returned", last.Sub(drainReturned))
	}
	cs := srv.Counters()
	if cs.Drained != inflight || cs.DrainKilled != 0 {
		t.Fatalf("drain ledger: drained=%d killed=%d, want %d/0", cs.Drained, cs.DrainKilled, inflight)
	}
	if cs.Inflight != 0 || cs.Queued != 0 {
		t.Fatalf("gauges nonzero after drain: %+v", cs)
	}
}

// TestDrainDeadlineCancelsStragglers: when inflight statements outlive
// the drain budget they are canceled through ExecContext — Drain still
// returns promptly and nothing runs past it.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	db := testDB(t)
	db.SetStrategy(msql.StrategyNaive)
	db.SetWorkers(1)
	slowOperators(t)
	srv, ts := startServer(t, db, server.Config{
		MaxInflight:  2,
		DrainTimeout: 30 * time.Millisecond,
	})
	c := client.New(ts.URL, client.WithBackoff(client.Backoff{Attempts: 1, Base: time.Millisecond, Max: time.Millisecond, Seed: 5}))

	done := make(chan error, 1)
	go func() {
		_, qerr := c.Query(context.Background(), slowQuery)
		done <- qerr
	}()
	waitFor(t, time.Second, func() bool { return srv.Counters().Inflight == 1 })

	start := time.Now()
	srv.Drain(context.Background())
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("drain with straggler took %v", elapsed)
	}
	err := <-done
	// The straggler was canceled; the server reports it as unavailable
	// (503) so a retrying client would fail over, and the taxonomy code
	// stays CANCELED end to end.
	if !errors.Is(err, msql.ErrCanceled) {
		t.Fatalf("straggler error: want ErrCanceled, got %v", err)
	}
	cs := srv.Counters()
	if cs.DrainKilled != 1 {
		t.Fatalf("drainKilled = %d, want 1 (counters %+v)", cs.DrainKilled, cs)
	}
}

// TestServerCountersInMetrics: the satellite contract — server counters
// surface in msql.Metrics() JSON and Prometheus output next to the
// engine's counters.
func TestServerCountersInMetrics(t *testing.T) {
	db := testDB(t)
	srv, ts := startServer(t, db, server.Config{})
	c := client.New(ts.URL, client.WithBackoff(fastBackoff(9)))
	if _, err := c.Query(context.Background(), listing3); err != nil {
		t.Fatal(err)
	}
	_ = srv

	snap := db.Metrics()
	if snap.Server == nil {
		t.Fatalf("MetricsSnapshot.Server is nil after registration")
	}
	if snap.Server.Admitted == 0 {
		t.Fatalf("server admitted counter not visible: %+v", snap.Server)
	}
	if !strings.Contains(snap.JSON(), `"server"`) {
		t.Fatalf("JSON output lacks server section")
	}
	prom := snap.Prometheus()
	for _, series := range []string{
		"msql_server_inflight", "msql_server_queued", "msql_server_shed_total",
		"msql_server_admitted_total", "msql_server_drain_killed_total",
		"msql_queries_canceled_total", // engine counters stay alongside
	} {
		if !strings.Contains(prom, series) {
			t.Fatalf("Prometheus output lacks %s", series)
		}
	}

	// And over HTTP.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "msql_server_admitted_total") {
		t.Fatalf("/metrics lacks server counters")
	}
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached within %v", d)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
