package server_test

// Introspection-surface tests: the request-ID contract (client →
// header echo → access log → engine tracer spans), the /statements and
// /queries endpoints, and /kill over the wire protocol.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/server"
	"github.com/measures-sql/msql/msql"
	"github.com/measures-sql/msql/msql/client"
)

// syncBuffer is an io.Writer safe to read from the test goroutine while
// handlers write to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// accessLines parses the structured access log.
func accessLines(t *testing.T, b *syncBuffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("access-log line is not JSON: %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

// TestRequestIDRoundTrip checks the acceptance contract: a request ID
// issued by msql/client appears in the response header, the server's
// structured access-log line, and the query's tracer spans.
func TestRequestIDRoundTrip(t *testing.T) {
	db := testDB(t)
	col := &exec.SpanCollector{}
	db.SetTrace(col)
	log := &syncBuffer{}
	_, ts := startServer(t, db, server.Config{AccessLog: log})
	c := client.New(ts.URL)

	res, err := c.Query(context.Background(), listing3, client.WithRequestID("test-req-42"))
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestID != "test-req-42" {
		t.Errorf("Result.RequestID = %q", res.RequestID)
	}

	// The access log carries the ID.
	var logged *map[string]any
	for _, rec := range accessLines(t, log) {
		if rec["request_id"] == "test-req-42" {
			r := rec
			logged = &r
		}
	}
	if logged == nil {
		t.Fatalf("request id missing from access log: %s", log.String())
	}
	if (*logged)["path"] != "/query" || (*logged)["status"] != float64(200) {
		t.Errorf("access record = %v", *logged)
	}
	if (*logged)["rows"] != float64(3) {
		t.Errorf("access record rows = %v, want 3", (*logged)["rows"])
	}

	// The engine's tracer spans are tagged with request and query IDs.
	tagged := 0
	for _, sp := range col.Spans() {
		if sp.Attrs["request_id"] == "test-req-42" {
			tagged++
			if sp.Attrs["query_id"] == "" {
				t.Errorf("tagged span %s/%s has no query_id", sp.Phase, sp.Name)
			}
		}
	}
	if tagged == 0 {
		t.Fatalf("no tracer span tagged with the request id; spans: %+v", col.Spans())
	}

	// Without an explicit ID the client generates one.
	res, err = c.Query(context.Background(), `SELECT 1 AS x`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.RequestID, "req-") {
		t.Errorf("generated RequestID = %q", res.RequestID)
	}
	if !strings.Contains(log.String(), res.RequestID) {
		t.Errorf("generated id %s not in access log", res.RequestID)
	}
}

// TestRequestIDHeader checks header precedence and echo: the
// X-Request-Id header wins over the body field and is echoed back, and
// error payloads carry the ID too.
func TestRequestIDHeader(t *testing.T) {
	db := testDB(t)
	log := &syncBuffer{}
	_, ts := startServer(t, db, server.Config{AccessLog: log})

	body := `{"sql": "SELECT noSuchColumn FROM Orders", "request_id": "body-id"}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "header-id")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "header-id" {
		t.Errorf("echoed X-Request-Id = %q, want header-id", got)
	}
	raw, _ := io.ReadAll(resp.Body)
	var qr struct {
		Error struct {
			Code      string `json:"code"`
			RequestID string `json:"request_id"`
		} `json:"error"`
	}
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
	if qr.Error.Code != "BIND" || qr.Error.RequestID != "header-id" {
		t.Errorf("error payload = %+v, want BIND with header-id", qr.Error)
	}
	found := false
	for _, rec := range accessLines(t, log) {
		if rec["request_id"] == "header-id" && rec["code"] == "BIND" {
			found = true
		}
	}
	if !found {
		t.Errorf("failed request not in access log with its id: %s", log.String())
	}
}

// TestStatementsEndpoint checks GET /statements exposes the stats store
// with fingerprints and latency percentiles.
func TestStatementsEndpoint(t *testing.T) {
	db := testDB(t)
	_, ts := startServer(t, db, server.Config{})
	c := client.New(ts.URL)
	for i := 0; i < 3; i++ {
		if _, err := c.Query(context.Background(), fmt.Sprintf(`SELECT COUNT(*) FROM big WHERE a > %d`, i)); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(ts.URL + "/statements")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Statements []struct {
			Fingerprint string `json:"fingerprint"`
			Calls       int64  `json:"calls"`
			Exec        struct {
				Count int64 `json:"count"`
				P99Ns int64 `json:"p99_ns"`
			} `json:"exec"`
		} `json:"statements"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, st := range out.Statements {
		if strings.Contains(st.Fingerprint, "a > ?") {
			found = true
			if st.Calls != 3 || st.Exec.Count != 3 || st.Exec.P99Ns <= 0 {
				t.Errorf("statement entry = %+v", st)
			}
		}
	}
	if !found {
		t.Fatalf("normalized fingerprint missing from /statements: %+v", out.Statements)
	}
	// The same stats answer over the wire as SQL (acceptance query).
	res, err := c.Query(context.Background(),
		`SELECT fingerprint, calls, p99_exec_ms FROM msql_stats.statements ORDER BY p99_exec_ms DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("acceptance query over the wire returned no rows")
	}
}

// TestKillEndpoint kills an in-flight wire query through POST /kill and
// checks the client sees a structured CANCELED error.
func TestKillEndpoint(t *testing.T) {
	db := testDB(t)
	slowOperators(t)
	_, ts := startServer(t, db, server.Config{})
	c := client.New(ts.URL)

	done := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), slowQuery)
		done <- err
	}()

	// Find the in-flight query via GET /queries.
	var id int64
	deadline := time.Now().Add(5 * time.Second)
	for id == 0 && time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/queries")
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Queries []struct {
				ID     int64  `json:"id"`
				Source string `json:"source"`
				SQL    string `json:"sql"`
			} `json:"queries"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range out.Queries {
			if strings.Contains(q.SQL, "AGGREGATE") {
				if q.Source != "wire" {
					t.Errorf("live query source = %q, want wire", q.Source)
				}
				id = q.ID
			}
		}
		time.Sleep(time.Millisecond)
	}
	if id == 0 {
		t.Fatal("slow query never appeared in /queries")
	}

	killed, err := c.Kill(context.Background(), id)
	if err != nil || !killed {
		t.Fatalf("Kill(%d) = %v, %v", id, killed, err)
	}
	if err := <-done; !errors.Is(err, msql.ErrCanceled) {
		t.Fatalf("killed wire query returned %v, want ErrCanceled", err)
	}

	// A raced/unknown kill answers killed=false with a structured error.
	killed, err = c.Kill(context.Background(), 999999)
	if killed || err == nil || !strings.Contains(err.Error(), "no running query") {
		t.Fatalf("Kill(unknown) = %v, %v", killed, err)
	}
}
