package server

// Introspection and request-tracing surface:
//
//	GET  /statements    statement-stats store as JSON
//	GET  /queries       live (in-flight) queries as JSON
//	POST /kill          {"id": N} — cancel an in-flight query
//	     /debug/pprof/  net/http/pprof (when Config.EnablePprof)
//
// plus the request-ID contract shared by the statement endpoints: the
// effective ID is X-Request-Id header > body request_id > generated,
// echoed in the X-Request-Id response header, passed to the engine
// (tagging tracer spans and the live-query registry), attached to error
// payloads, and written to the structured access log.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/wire"
)

// requestID resolves the effective correlation ID for one request and
// echoes it in the response header.
func (s *Server) requestID(w http.ResponseWriter, r *http.Request, bodyID string) string {
	id := r.Header.Get("X-Request-Id")
	if id == "" {
		id = bodyID
	}
	if id == "" {
		id = fmt.Sprintf("srv-%d", s.reqSeq.Add(1))
	}
	w.Header().Set("X-Request-Id", id)
	return id
}

// accessRecord is one access-log line; field order is the JSON order.
type accessRecord struct {
	TS        string  `json:"ts"`
	Path      string  `json:"path"`
	RequestID string  `json:"request_id"`
	Status    int     `json:"status"`
	Code      string  `json:"code,omitempty"`
	DurMs     float64 `json:"dur_ms"`
	Rows      int     `json:"rows"`
}

// logAccess writes one structured line to the access log, if configured.
func (s *Server) logAccess(path, requestID string, status int, code exec.Code, dur time.Duration, rows int) {
	if s.cfg.AccessLog == nil {
		return
	}
	rec := accessRecord{
		TS:        time.Now().UTC().Format(time.RFC3339Nano),
		Path:      path,
		RequestID: requestID,
		Status:    status,
		DurMs:     float64(dur) / 1e6,
		Rows:      rows,
	}
	if code != 0 {
		rec.Code = code.String()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	s.logMu.Lock()
	s.cfg.AccessLog.Write(append(line, '\n'))
	s.logMu.Unlock()
}

// serveStatements handles GET /statements: the statement-stats store.
func (s *Server) serveStatements(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"statements": s.db.StatementStats()})
}

// serveQueries handles GET /queries: the live-query registry.
func (s *Server) serveQueries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"queries": s.db.ActiveQueries()})
}

// serveKill handles POST /kill {"id": N}: cancel an in-flight query by
// its session query ID. Unknown IDs answer 404 with a structured error
// so a raced KILL (the query just finished) is distinguishable from a
// successful one.
func (s *Server) serveKill(w http.ResponseWriter, r *http.Request) {
	var req wire.KillRequest
	if !s.decodeRequest(w, r, &req, `POST a JSON body like {"id": 7}`) {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if !s.db.Kill(req.ID) {
		s.outcome(exec.CodeBind)
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(wire.KillResponse{Killed: false, Error: &wire.Error{
			Code:    exec.CodeBind.String(),
			Phase:   "request",
			Offset:  -1,
			Hint:    "list running queries with GET /queries",
			Message: fmt.Sprintf("no running query with id %d", req.ID),
		}})
		return
	}
	s.outcome(0)
	json.NewEncoder(w).Encode(wire.KillResponse{Killed: true})
}

// mountDebug adds the introspection and (optionally) pprof endpoints.
func (s *Server) mountDebug(mux *http.ServeMux) {
	mux.HandleFunc("/statements", s.serveStatements)
	mux.HandleFunc("/queries", s.serveQueries)
	mux.HandleFunc("/kill", s.serveKill)
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}
