package server

// Shard-facing endpoints, used by a coordinator (internal/dist) rather
// than interactive clients:
//
//	POST /partial  run an aggregation's scan/filter/group phase and
//	               return serialized per-group partial states
//	POST /apply    apply one replicated mutation, guarded by a
//	               catalog-version compare-and-swap
//	GET  /catalog  shard identity + catalog version/contents, for
//	               endpoint attachment and lost-ack probes
//
// /partial and /apply go through the same admission control, request-ID
// plumbing, panic isolation, and access logging as /query; /catalog is
// a cheap read like /metrics.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/wire"
	"github.com/measures-sql/msql/msql"
)

// versionMismatchStatus is the HTTP status of a catalog-version CAS
// miss. It is deliberately not 429/503: a stale shard needs repair by
// the coordinator, not a blind retry of the same request.
const versionMismatchStatus = http.StatusConflict

func versionMismatchError(have, want int64, reqID string) *wire.Error {
	return &wire.Error{
		Code:      exec.CodeRuntime.String(),
		Phase:     "catalog",
		Offset:    -1,
		Hint:      "resynchronize the endpoint, then retry",
		Message:   fmt.Sprintf("catalog version mismatch: shard at %d, request expects %d", have, want),
		RequestID: reqID,
	}
}

// readJSON decodes a bounded POST body, writing the structured parse
// rejection itself on failure.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes))
	if err == nil {
		err = json.Unmarshal(body, into)
	}
	if err != nil {
		s.outcome(exec.CodeParse)
		s.writeError(w, &wire.Error{
			Code:    exec.CodeParse.String(),
			Phase:   "request",
			Offset:  -1,
			Message: fmt.Sprintf("bad request: %v", err),
		}, http.StatusBadRequest)
		return false
	}
	return true
}

// stmtContext wires one shard request's context the way serveQuery
// does: canceled with the client connection or the drain kill switch.
func (s *Server) stmtContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stopKill := context.AfterFunc(s.killCtx, cancel)
	return ctx, func() { stopKill(); cancel() }
}

// errCode extracts the taxonomy code for outcome bookkeeping.
func errCode(err error) exec.Code {
	code := exec.CodeRuntime
	var ee *exec.Error
	if errors.As(err, &ee) {
		code = ee.Code
	}
	return code
}

func (s *Server) servePartial(w http.ResponseWriter, r *http.Request) {
	wrote := false
	defer func() {
		if rec := recover(); rec != nil {
			s.counters.panics.Add(1)
			s.outcome(exec.CodeRuntime)
			if !wrote {
				s.writeError(w, wire.FromError(exec.PanicError(rec, exec.PhaseExecute)), http.StatusInternalServerError)
			}
		}
	}()

	s.counters.accepted.Add(1)
	var req wire.PartialRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	reqID := s.requestID(w, r, req.RequestID)
	start := time.Now()

	if !s.admitOrReject(w, r) {
		return
	}
	defer s.release()

	writeResp := func(status int, resp wire.PartialResponse) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		wrote = true
		json.NewEncoder(w).Encode(resp)
	}

	if v := s.db.CatalogVersion(); req.ExpectVersion > 0 && v != req.ExpectVersion {
		s.finishAdmitted(exec.CodeRuntime, false)
		writeResp(versionMismatchStatus, wire.PartialResponse{
			Version: v, Error: versionMismatchError(v, req.ExpectVersion, reqID),
		})
		s.logAccess("/partial", reqID, versionMismatchStatus, exec.CodeRuntime, time.Since(start), 0)
		return
	}

	ctx, cancel := s.stmtContext(r)
	defer cancel()
	opts := []msql.Option{msql.WithSource("shard"), msql.WithRequestID(reqID)}
	if req.TimeoutMillis > 0 {
		d := time.Duration(req.TimeoutMillis) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
		opts = append(opts, msql.WithTimeout(d))
	}

	res, err := s.db.PartialAggregate(ctx, req.SQL, req.Groups, req.Aggs, opts...)
	if err != nil {
		code := errCode(err)
		killed := code == exec.CodeCanceled && s.killCtx.Err() != nil
		s.finishAdmitted(code, killed)
		we := wire.FromError(err)
		we.RequestID = reqID
		status := we.HTTPStatus()
		if killed || (code == exec.CodeCanceled && s.draining.Load()) {
			status = http.StatusServiceUnavailable
		}
		writeResp(status, wire.PartialResponse{Version: s.db.CatalogVersion(), Error: we})
		s.logAccess("/partial", reqID, status, code, time.Since(start), 0)
		return
	}
	s.finishAdmitted(0, false)

	resp := wire.PartialResponse{Version: s.db.CatalogVersion(), Groups: make([]wire.PartialGroup, len(res.Groups))}
	for i, g := range res.Groups {
		states, err := wire.EncodeStates(g.States)
		if err != nil {
			we := wire.FromError(exec.Wrap(err, exec.CodeRuntime, exec.PhaseExecute))
			we.RequestID = reqID
			s.outcome(exec.CodeRuntime)
			writeResp(http.StatusInternalServerError, wire.PartialResponse{Version: resp.Version, Error: we})
			s.logAccess("/partial", reqID, http.StatusInternalServerError, exec.CodeRuntime, time.Since(start), 0)
			return
		}
		resp.Groups[i] = wire.PartialGroup{Key: wire.EncodeKey(g.Key), States: states}
	}
	s.logAccess("/partial", reqID, http.StatusOK, 0, time.Since(start), len(resp.Groups))
	writeResp(http.StatusOK, resp)
}

func (s *Server) serveApply(w http.ResponseWriter, r *http.Request) {
	wrote := false
	defer func() {
		if rec := recover(); rec != nil {
			s.counters.panics.Add(1)
			s.outcome(exec.CodeRuntime)
			if !wrote {
				s.writeError(w, wire.FromError(exec.PanicError(rec, exec.PhaseExecute)), http.StatusInternalServerError)
			}
		}
	}()

	s.counters.accepted.Add(1)
	var req wire.ApplyRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	reqID := s.requestID(w, r, req.RequestID)
	start := time.Now()

	if !s.admitOrReject(w, r) {
		return
	}
	defer s.release()

	writeResp := func(status int, resp wire.ApplyResponse) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		wrote = true
		json.NewEncoder(w).Encode(resp)
	}
	fail := func(err error) {
		code := errCode(err)
		killed := code == exec.CodeCanceled && s.killCtx.Err() != nil
		s.finishAdmitted(code, killed)
		we := wire.FromError(err)
		we.RequestID = reqID
		status := we.HTTPStatus()
		if killed || (code == exec.CodeCanceled && s.draining.Load()) {
			status = http.StatusServiceUnavailable
		}
		writeResp(status, wire.ApplyResponse{Version: s.db.CatalogVersion(), Error: we})
		s.logAccess("/apply", reqID, status, code, time.Since(start), 0)
	}

	ctx, cancel := s.stmtContext(r)
	defer cancel()
	opts := []msql.Option{msql.WithSource("shard"), msql.WithRequestID(reqID)}

	var (
		version int64
		ok      bool
		err     error
		message string
	)
	switch {
	case req.SQL != "":
		var res *msql.Result
		res, version, ok, err = s.db.ExecCAS(ctx, req.SQL, req.ExpectVersion, opts...)
		if res != nil {
			message = res.Message
		}
	case req.Table != "":
		var rows [][]msql.Value
		rows, err = wire.DecodeRowsBinary(req.Rows)
		if err != nil {
			fail(exec.Wrap(err, exec.CodeParse, exec.PhaseParse))
			return
		}
		version, ok, err = s.db.InsertRowsCAS(req.Table, rows, req.ExpectVersion)
		message = fmt.Sprintf("inserted %d rows into %s", len(rows), req.Table)
	default:
		fail(exec.Wrap(errors.New("apply carries neither sql nor rows"), exec.CodeParse, exec.PhaseParse))
		return
	}
	if err != nil {
		fail(err)
		return
	}
	if !ok {
		s.finishAdmitted(exec.CodeRuntime, false)
		writeResp(versionMismatchStatus, wire.ApplyResponse{
			Version: version, Error: versionMismatchError(version, req.ExpectVersion, reqID),
		})
		s.logAccess("/apply", reqID, versionMismatchStatus, exec.CodeRuntime, time.Since(start), 0)
		return
	}
	s.finishAdmitted(0, false)
	s.logAccess("/apply", reqID, http.StatusOK, 0, time.Since(start), 0)
	writeResp(http.StatusOK, wire.ApplyResponse{Version: version, Message: message})
}

func (s *Server) serveCatalog(w http.ResponseWriter, r *http.Request) {
	tables, views := s.db.Tables()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(wire.CatalogResponse{
		Version: s.db.CatalogVersion(),
		Tables:  tables,
		Views:   views,
		ShardID: s.cfg.ShardID,
	})
}
