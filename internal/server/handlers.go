package server

// The HTTP surface of msqld:
//
//	POST /query         JSON in, one JSON object out
//	POST /query.ndjson  JSON in, newline-delimited stream out
//	                    (header, row lines, trailer)
//	GET  /healthz       liveness — 200 as long as the process serves
//	GET  /readyz        readiness — 503 once draining
//	GET  /metrics       Prometheus text (engine + server counters)
//	GET  /metrics.json  the same snapshot as expvar-style JSON
//	GET  /statements    statement-stats store (see introspect.go)
//	GET  /queries       in-flight queries
//	POST /kill          cancel an in-flight query by ID
//	     /debug/pprof/  profiling, when Config.EnablePprof

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/wire"
	"github.com/measures-sql/msql/msql"
)

// maxRequestBytes bounds a request body; a hostile client cannot make
// the server buffer an unbounded statement.
const maxRequestBytes = 1 << 20

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		s.serveQuery(w, r, false)
	})
	mux.HandleFunc("/query.ndjson", func(w http.ResponseWriter, r *http.Request) {
		s.serveQuery(w, r, true)
	})
	mux.HandleFunc("/prepare", s.servePrepare)
	mux.HandleFunc("/execute", s.serveExecute)
	mux.HandleFunc("/partial", s.servePartial)
	mux.HandleFunc("/apply", s.serveApply)
	mux.HandleFunc("/catalog", s.serveCatalog)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "draining\n")
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ready\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		io.WriteString(w, s.db.Metrics().Prometheus())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, s.db.Metrics().JSON())
	})
	s.mountDebug(mux)
	return mux
}

// writeError sends one wire error with its HTTP status; 429 and 503
// carry a Retry-After hint.
func (s *Server) writeError(w http.ResponseWriter, we *wire.Error, status int) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		secs := int(s.cfg.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(wire.QueryResponse{Error: we})
}

// shedError is the wire form of an overload rejection: a structured
// RESOURCE_EXHAUSTED so shed requests land in the same taxonomy as
// engine-side limit trips.
func shedError(msg, hint string) *wire.Error {
	return wire.FromError(&exec.Error{
		Code:  exec.CodeResourceExhausted,
		Phase: "admission",
		Pos:   -1,
		Hint:  hint,
		Err:   errors.New(msg),
	})
}

// admitOrReject runs admission control for one request, writing the
// structured rejection (shed, draining, abandoned) itself. On true the
// caller owns an execution slot and must s.release() when done.
func (s *Server) admitOrReject(w http.ResponseWriter, r *http.Request) bool {
	switch s.admit(r.Context()) {
	case admitted:
		return true
	case shedQueueFull:
		s.outcome(exec.CodeResourceExhausted)
		s.writeError(w, shedError(
			fmt.Sprintf("server overloaded: %d executing, %d queued", s.cfg.MaxInflight, s.cfg.MaxQueue),
			"retry with backoff"), http.StatusTooManyRequests)
	case shedQueueWait:
		s.outcome(exec.CodeResourceExhausted)
		s.writeError(w, shedError(
			fmt.Sprintf("no execution slot freed within %v", s.cfg.QueueWait),
			"retry with backoff"), http.StatusTooManyRequests)
	case rejectedDraining:
		s.outcome(exec.CodeResourceExhausted)
		s.writeError(w, shedError("server is draining", "retry against another replica"),
			http.StatusServiceUnavailable)
	case abandonedByClient:
		s.outcome(exec.CodeCanceled)
		// The client is (probably) gone; still send a structured body in
		// case the cancel raced with delivery — every response a client
		// manages to read carries a taxonomy code.
		s.writeError(w, wire.FromError(exec.CtxError(context.Canceled)),
			wire.StatusClientClosedRequest)
	}
	return false
}

// serveQuery handles POST /query and /query.ndjson: admission control,
// deadline policy, execution, and response framing — with the panic
// isolation and exactly-one-taxonomy-code bookkeeping the package
// contract promises.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, ndjson bool) {
	wrote := false
	defer func() {
		if rec := recover(); rec != nil {
			s.counters.panics.Add(1)
			s.outcome(exec.CodeRuntime)
			if !wrote {
				s.writeError(w, wire.FromError(exec.PanicError(rec, exec.PhaseExecute)), http.StatusInternalServerError)
			}
		}
	}()

	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.counters.accepted.Add(1)

	var req wire.QueryRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes))
	if err == nil {
		err = json.Unmarshal(body, &req)
	}
	if err != nil || req.SQL == "" {
		if err == nil {
			err = errors.New("request carries no sql")
		}
		s.outcome(exec.CodeParse)
		s.writeError(w, &wire.Error{
			Code:    exec.CodeParse.String(),
			Phase:   "request",
			Offset:  -1,
			Hint:    `POST a JSON body like {"sql": "SELECT ..."}`,
			Message: fmt.Sprintf("bad request: %v", err),
		}, http.StatusBadRequest)
		return
	}

	reqID := s.requestID(w, r, req.RequestID)
	start := time.Now()
	path := "/query"
	if ndjson {
		path = "/query.ndjson"
	}

	// Chaos hook: the server-accept failpoint simulates admission-path
	// faults; a firing is shed exactly like real overload.
	if err := exec.Fire(exec.FailServerAccept); err != nil {
		s.counters.shed.Add(1)
		s.outcome(exec.CodeResourceExhausted)
		s.writeError(w, shedError("admission failpoint fired", "retry with backoff"),
			http.StatusTooManyRequests)
		return
	}

	if !s.admitOrReject(w, r) {
		return
	}
	defer s.release()

	// Catalog-version guard: a coordinator pins the version its plan was
	// built against so a lagging or diverged shard rejects instead of
	// answering from the wrong schema.
	if v := s.db.CatalogVersion(); req.ExpectCatalogVersion > 0 && v != req.ExpectCatalogVersion {
		s.finishAdmitted(exec.CodeRuntime, false)
		s.writeError(w, versionMismatchError(v, req.ExpectCatalogVersion, reqID), versionMismatchStatus)
		s.logAccess(path, reqID, versionMismatchStatus, exec.CodeRuntime, time.Since(start), 0)
		return
	}

	// The statement context: canceled when the client goes away or the
	// drain deadline kills stragglers.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stopKill := context.AfterFunc(s.killCtx, cancel)
	defer stopKill()

	// Deadline policy: a client-supplied timeout is clamped to
	// MaxTimeout; absent one, the session's exec.Limits.Timeout applies
	// inside the engine.
	opts := []msql.Option{msql.WithSource("wire"), msql.WithRequestID(reqID)}
	if req.TimeoutMillis > 0 {
		d := time.Duration(req.TimeoutMillis) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
		opts = append(opts, msql.WithTimeout(d))
	}

	results, err := s.db.RunContext(ctx, req.SQL, opts...)
	if err != nil {
		code := exec.CodeRuntime
		var ee *exec.Error
		if errors.As(err, &ee) {
			code = ee.Code
		}
		killed := code == exec.CodeCanceled && s.killCtx.Err() != nil
		s.finishAdmitted(code, killed)
		we := wire.FromError(err)
		we.RequestID = reqID
		status := we.HTTPStatus()
		if killed || (code == exec.CodeCanceled && s.draining.Load()) {
			status = http.StatusServiceUnavailable
		}
		s.writeError(w, we, status)
		s.logAccess(path, reqID, status, code, time.Since(start), 0)
		return
	}
	s.finishAdmitted(0, false)

	// Respond with the last result: rows for queries, a message for
	// DDL/DML scripts.
	resp := wire.QueryResponse{}
	if len(results) > 0 {
		last := results[len(results)-1]
		if last.Rows != nil || len(last.Columns) > 0 {
			resp.Columns = last.Columns
			resp.Types = make([]string, len(last.Types))
			for i, t := range last.Types {
				resp.Types[i] = t.String()
			}
			resp.Rows = wire.EncodeRows(last.Rows)
		} else {
			resp.Message = last.Message
		}
	} else {
		resp.Message = "ok"
	}

	s.logAccess(path, reqID, http.StatusOK, 0, time.Since(start), len(resp.Rows))
	if !ndjson {
		w.Header().Set("Content-Type", "application/json")
		wrote = true
		json.NewEncoder(w).Encode(resp)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	wrote = true
	enc := json.NewEncoder(w)
	enc.Encode(wire.Header{Columns: resp.Columns, Types: resp.Types})
	for _, row := range resp.Rows {
		enc.Encode(wire.RowLine{Row: row})
	}
	enc.Encode(wire.Trailer{Done: true, Rows: len(resp.Rows)})
}
