package server

// Prepared-statement endpoints:
//
//	POST /prepare  {"name": "q", "sql": "SELECT ... WHERE a > $1"}
//	POST /execute  {"name": "q", "params": [{"type":"INTEGER","value":3}]}
//
// Both run through the same admission control as /query — a PREPARE
// binds the statement against the catalog and an EXECUTE runs a full
// query, so neither may bypass overload shedding or drain. Executions
// route through the session plan cache: the first EXECUTE of a
// (statement, parameter types, settings) combination plans and caches,
// later ones reuse the compiled pipeline.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/wire"
	"github.com/measures-sql/msql/msql"
)

// decodeRequest reads and unmarshals one bounded JSON body, writing the
// structured bad-request response itself on failure.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request, v any, hint string) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	s.counters.accepted.Add(1)
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes))
	if err == nil {
		err = json.Unmarshal(body, v)
	}
	if err != nil {
		s.outcome(exec.CodeParse)
		s.writeError(w, &wire.Error{
			Code:    exec.CodeParse.String(),
			Phase:   "request",
			Offset:  -1,
			Hint:    hint,
			Message: fmt.Sprintf("bad request: %v", err),
		}, http.StatusBadRequest)
		return false
	}
	return true
}

// badRequest writes a structured PARSE/request error.
func (s *Server) badRequest(w http.ResponseWriter, msg, hint string) {
	s.outcome(exec.CodeParse)
	s.writeError(w, &wire.Error{
		Code:    exec.CodeParse.String(),
		Phase:   "request",
		Offset:  -1,
		Hint:    hint,
		Message: msg,
	}, http.StatusBadRequest)
}

// servePrepare handles POST /prepare: parse + bind the statement and
// register it under its name (replacing any previous definition).
func (s *Server) servePrepare(w http.ResponseWriter, r *http.Request) {
	wrote := false
	defer func() {
		if rec := recover(); rec != nil {
			s.counters.panics.Add(1)
			s.outcome(exec.CodeRuntime)
			if !wrote {
				s.writeError(w, wire.FromError(exec.PanicError(rec, exec.PhaseExecute)), http.StatusInternalServerError)
			}
		}
	}()
	var req wire.PrepareRequest
	if !s.decodeRequest(w, r, &req, `POST a JSON body like {"name": "q", "sql": "SELECT ... WHERE a > $1"}`) {
		return
	}
	if req.Name == "" || req.SQL == "" {
		s.badRequest(w, "prepare request needs both name and sql", `{"name": "q", "sql": "SELECT ..."}`)
		return
	}
	if !s.admitOrReject(w, r) {
		return
	}
	defer s.release()

	n, err := s.db.PrepareNamed(req.Name, req.SQL)
	if err != nil {
		code := exec.CodeRuntime
		var ee *exec.Error
		if errors.As(err, &ee) {
			code = ee.Code
		}
		s.finishAdmitted(code, false)
		we := wire.FromError(err)
		s.writeError(w, we, we.HTTPStatus())
		return
	}
	s.finishAdmitted(0, false)
	w.Header().Set("Content-Type", "application/json")
	wrote = true
	json.NewEncoder(w).Encode(wire.PrepareResponse{Name: req.Name, NumParams: n})
}

// serveExecute handles POST /execute: decode typed parameters and run
// the named statement through the plan cache.
func (s *Server) serveExecute(w http.ResponseWriter, r *http.Request) {
	wrote := false
	defer func() {
		if rec := recover(); rec != nil {
			s.counters.panics.Add(1)
			s.outcome(exec.CodeRuntime)
			if !wrote {
				s.writeError(w, wire.FromError(exec.PanicError(rec, exec.PhaseExecute)), http.StatusInternalServerError)
			}
		}
	}()
	var req wire.ExecuteRequest
	if !s.decodeRequest(w, r, &req, `POST a JSON body like {"name": "q", "params": [{"type":"INTEGER","value":3}]}`) {
		return
	}
	if req.Name == "" {
		s.badRequest(w, "execute request carries no statement name", `{"name": "q", "params": [...]}`)
		return
	}
	vals, err := wire.DecodeParams(req.Params)
	if err != nil {
		s.badRequest(w, err.Error(), `params are [{"type":"INTEGER","value":3}, ...]`)
		return
	}
	if !s.admitOrReject(w, r) {
		return
	}
	defer s.release()

	reqID := s.requestID(w, r, req.RequestID)
	start := time.Now()

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stopKill := context.AfterFunc(s.killCtx, cancel)
	defer stopKill()

	opts := []msql.Option{msql.WithSource("wire"), msql.WithRequestID(reqID)}
	if req.TimeoutMillis > 0 {
		d := time.Duration(req.TimeoutMillis) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
		opts = append(opts, msql.WithTimeout(d))
	}

	res, err := s.db.ExecuteNamed(ctx, req.Name, vals, opts...)
	if err != nil {
		code := exec.CodeRuntime
		var ee *exec.Error
		if errors.As(err, &ee) {
			code = ee.Code
		}
		killed := code == exec.CodeCanceled && s.killCtx.Err() != nil
		s.finishAdmitted(code, killed)
		we := wire.FromError(err)
		we.RequestID = reqID
		status := we.HTTPStatus()
		if killed || (code == exec.CodeCanceled && s.draining.Load()) {
			status = http.StatusServiceUnavailable
		}
		s.writeError(w, we, status)
		s.logAccess("/execute", reqID, status, code, time.Since(start), 0)
		return
	}
	s.finishAdmitted(0, false)
	s.logAccess("/execute", reqID, http.StatusOK, 0, time.Since(start), len(res.Rows))

	resp := wire.QueryResponse{Columns: res.Columns, Rows: wire.EncodeRows(res.Rows)}
	resp.Types = make([]string, len(res.Types))
	for i, t := range res.Types {
		resp.Types[i] = t.String()
	}
	w.Header().Set("Content-Type", "application/json")
	wrote = true
	json.NewEncoder(w).Encode(resp)
}
