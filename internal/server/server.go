// Package server is the fault-tolerant query front end (msqld) over an
// msql.DB: it adds what the embedded engine deliberately leaves out —
// admission control, overload shedding, per-request deadline policy,
// panic isolation, health endpoints, and graceful drain — so the
// paper's "measures as a service surface" (§5.5: a view with measures
// is a hologram many consumers query) survives concurrent, bursty, and
// hostile load instead of collapsing.
//
// The robustness contract:
//
//   - At most Config.MaxInflight statements execute concurrently; at
//     most Config.MaxQueue more wait. Anything beyond that is shed
//     immediately with HTTP 429 + Retry-After — the server never queues
//     unboundedly and never blocks a client forever.
//   - A queued request waits at most Config.QueueWait before it is shed.
//   - Client-supplied deadlines are clamped to Config.MaxTimeout; with
//     no client deadline the session's exec.Limits.Timeout applies.
//   - Every request terminates with exactly one taxonomy code: the
//     response is either rows or one wire.Error whose code is a stable
//     msql.Error code.
//   - A panic in a handler (or the engine) is isolated to that request:
//     the client gets RUNTIME/500, the server keeps serving.
//   - Drain stops admission (readyz → 503, new queries → 503), waits
//     for inflight work under the drain deadline, then cancels the
//     stragglers through ExecContext and waits for them — no query
//     runs past Drain's return.
package server

import (
	"context"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/msql"
)

// Config tunes the server's admission and drain policy. The zero value
// gets serviceable defaults from withDefaults.
type Config struct {
	// MaxInflight caps concurrently executing statements (default 8).
	MaxInflight int
	// MaxQueue caps requests waiting for an execution slot beyond
	// MaxInflight (default 2×MaxInflight). Requests beyond the queue
	// are shed with 429.
	MaxQueue int
	// QueueWait caps how long an admitted-to-queue request waits for an
	// execution slot before being shed (default 1s).
	QueueWait time.Duration
	// MaxTimeout clamps client-supplied per-request timeouts
	// (default 30s). Client requests without a timeout inherit the
	// session's exec.Limits.Timeout.
	MaxTimeout time.Duration
	// DrainTimeout bounds how long Drain waits for inflight statements
	// to finish voluntarily before canceling them (default 5s).
	DrainTimeout time.Duration
	// RetryAfter is the hint sent with 429/503 responses (default 1s;
	// rendered in whole seconds, minimum 1).
	RetryAfter time.Duration
	// AccessLog, when non-nil, receives one structured JSON line per
	// statement-executing request (path, request ID, status, taxonomy
	// code, duration). msqld points it at stderr.
	AccessLog io.Writer
	// EnablePprof mounts net/http/pprof's profiling handlers under
	// /debug/pprof/ on the server's own mux (never the default mux).
	EnablePprof bool
	// ShardID names this node's slot in a sharded topology (e.g.
	// "shard-2"). Exposed through GET /catalog so a coordinator can
	// verify it attached the endpoint it meant to; empty for standalone
	// servers.
	ShardID string
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 8
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxInflight
	}
	if c.QueueWait <= 0 {
		c.QueueWait = time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server serves queries over one msql.DB. Create with New, expose with
// Handler, stop with Drain.
type Server struct {
	db  *msql.DB
	cfg Config

	// sem holds one token per executing statement (capacity MaxInflight).
	sem chan struct{}
	// queued counts requests waiting on sem, bounded by MaxQueue.
	queued   atomic.Int64
	inflight atomic.Int64

	// drainCh closes when drain starts, waking queued waiters into 503.
	drainCh  chan struct{}
	draining atomic.Bool
	// drainMu orders registration against drain: register holds the
	// read side around the draining check + wg.Add, Drain holds the
	// write side while setting draining — so no statement can slip into
	// wg after Drain has started waiting on it.
	drainMu sync.RWMutex
	// killCtx cancels at the drain deadline; every admitted statement's
	// context is parented on it, so stragglers stop cooperatively.
	killCtx context.Context
	kill    context.CancelFunc
	// wg tracks admitted statements; Drain waits on it.
	wg        sync.WaitGroup
	drainOnce sync.Once

	// reqSeq numbers server-generated request IDs; logMu serializes
	// access-log writes.
	reqSeq atomic.Int64
	logMu  sync.Mutex

	counters counters
}

// counters are the server's cumulative metrics (see msql.ServerCounters
// for the published shape).
type counters struct {
	accepted    atomic.Int64
	admitted    atomic.Int64
	shed        atomic.Int64
	rejected    atomic.Int64
	drained     atomic.Int64
	drainKilled atomic.Int64
	panics      atomic.Int64
	drainNs     atomic.Int64
	// byCode counts finished requests per taxonomy code (index =
	// exec.Code); byCode[0] counts successes.
	byCode [9]atomic.Int64
}

// New creates a Server over db and registers its counters with the
// db's metrics registry, so msql.Metrics() (and the /metrics endpoints)
// report engine and server state together.
func New(db *msql.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		db:      db,
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxInflight),
		drainCh: make(chan struct{}),
	}
	s.killCtx, s.kill = context.WithCancel(context.Background())
	db.RegisterServerMetrics(s.Counters)
	return s
}

// Counters returns a point-in-time copy of the server's counters.
func (s *Server) Counters() msql.ServerCounters {
	return msql.ServerCounters{
		Inflight:    s.inflight.Load(),
		Queued:      s.queued.Load(),
		Accepted:    s.counters.accepted.Load(),
		Admitted:    s.counters.admitted.Load(),
		Shed:        s.counters.shed.Load(),
		Rejected:    s.counters.rejected.Load(),
		Drained:     s.counters.drained.Load(),
		DrainKilled: s.counters.drainKilled.Load(),
		Panics:      s.counters.panics.Load(),
		DrainNs:     s.counters.drainNs.Load(),
	}
}

// admission is the outcome of one pass through admission control.
type admission int

const (
	admitted admission = iota
	shedQueueFull
	shedQueueWait
	rejectedDraining
	abandonedByClient
)

// admit applies admission control for one request. On admitted, the
// caller owns an execution slot and must call s.release() when the
// statement finishes.
func (s *Server) admit(ctx context.Context) admission {
	if s.draining.Load() {
		s.counters.rejected.Add(1)
		return rejectedDraining
	}
	// Fast path: an execution slot is free.
	select {
	case s.sem <- struct{}{}:
		return s.register()
	default:
	}
	// Claim a bounded queue slot or shed immediately.
	for {
		q := s.queued.Load()
		if q >= int64(s.cfg.MaxQueue) {
			s.counters.shed.Add(1)
			return shedQueueFull
		}
		if s.queued.CompareAndSwap(q, q+1) {
			break
		}
	}
	defer s.queued.Add(-1)
	timer := time.NewTimer(s.cfg.QueueWait)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		return s.register()
	case <-timer.C:
		s.counters.shed.Add(1)
		return shedQueueWait
	case <-ctx.Done():
		return abandonedByClient
	case <-s.drainCh:
		s.counters.rejected.Add(1)
		return rejectedDraining
	}
}

// register enrolls a statement that holds an execution slot into the
// drain group, unless drain has started — in which case the slot goes
// back and the request is rejected. The read lock pairs with Drain's
// write lock: a successful wg.Add strictly precedes Drain's wg.Wait.
func (s *Server) register() admission {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining.Load() {
		<-s.sem
		s.counters.rejected.Add(1)
		return rejectedDraining
	}
	s.counters.admitted.Add(1)
	s.inflight.Add(1)
	s.wg.Add(1)
	return admitted
}

// release returns the execution slot claimed by a successful admit.
func (s *Server) release() {
	s.inflight.Add(-1)
	<-s.sem
	s.wg.Done()
}

// outcome records the terminal taxonomy code of one request; code 0
// (CodeUnknown) counts successes. Every request — admitted, shed,
// rejected, or abandoned — ends in exactly one outcome call.
func (s *Server) outcome(code exec.Code) {
	if c := int(code); c >= 0 && c < len(s.counters.byCode) {
		s.counters.byCode[c].Add(1)
	}
}

// OutcomeCount returns how many requests terminated with code (code 0
// counts successes); test hook for the one-code-per-request invariant.
func (s *Server) OutcomeCount(code exec.Code) int64 {
	if c := int(code); c >= 0 && c < len(s.counters.byCode) {
		return s.counters.byCode[c].Load()
	}
	return 0
}

// finishAdmitted folds a completed statement into the outcome and
// drain counters. killed reports whether the drain deadline canceled it.
func (s *Server) finishAdmitted(code exec.Code, killed bool) {
	s.outcome(code)
	if s.draining.Load() {
		if killed {
			s.counters.drainKilled.Add(1)
		} else {
			s.counters.drained.Add(1)
		}
	}
}

// Draining reports whether the server has stopped admitting requests.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully stops the server: no new statements are admitted
// (readyz and /query answer 503), inflight statements get up to
// Config.DrainTimeout (or ctx's earlier deadline) to finish, and the
// remainder are canceled through their contexts and awaited. When Drain
// returns, no statement is running. Safe to call more than once; later
// calls wait for the first to finish.
func (s *Server) Drain(ctx context.Context) {
	s.drainOnce.Do(func() {
		start := time.Now()
		s.drainMu.Lock()
		s.draining.Store(true)
		s.drainMu.Unlock()
		close(s.drainCh)

		done := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(done)
		}()
		budget := time.NewTimer(s.cfg.DrainTimeout)
		defer budget.Stop()
		select {
		case <-done:
		case <-budget.C:
			s.kill()
			<-done // cancellation is cooperative and prompt
		case <-ctx.Done():
			s.kill()
			<-done
		}
		s.kill() // release the kill context either way
		s.counters.drainNs.Store(int64(time.Since(start)))
	})
	// Later callers (or the first) all observe a fully drained server.
	s.wg.Wait()
}
