package plan

// This file is the plan half of the observability layer: per-operator
// runtime metrics (OpMetrics) and the EXPLAIN ANALYZE renderer. The
// executor owns the collection side (internal/exec.Profile implements
// MetricsSource); the plan package owns the struct and the rendering so
// that every layer above can annotate a plan tree without importing the
// executor.

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// OpMetrics accumulates runtime counters for one plan operator (or one
// Subquery expression). All fields are updated with atomic operations so
// they stay exact when the executor fans out over worker goroutines.
//
// Wall time is inclusive (children are counted inside their parent) and
// is summed across every execution of the operator: a subquery plan
// evaluated once per evaluation context, possibly on several workers at
// once, reports the total work done, which can exceed elapsed time.
type OpMetrics struct {
	// Calls counts executions of the operator (loops): 1 for top-level
	// operators, one per evaluation for operators inside subquery plans.
	Calls int64
	// RowsOut is the total number of rows produced across all calls.
	RowsOut int64
	// WallNs is the total inclusive wall time across all calls.
	WallNs int64
	// MaxWorkers is the largest morsel/worker fan-out the operator used
	// (0 when it never went parallel).
	MaxWorkers int64
	// Evals counts actual subquery plan executions (Subquery only):
	// distinct evaluation contexts under the memo strategy.
	Evals int64
	// CacheHits counts evaluations served from the measure-context memo
	// cache (Subquery only).
	CacheHits int64
	// Batches counts columnar batches the operator processed on the
	// vectorized path (0 on the row path — rendering keys off it).
	Batches int64
	// KernelEvals counts expression-node evaluations done by batch
	// kernels; FallbackEvals counts rows handed back to the row-at-a-time
	// evaluator for expressions without a kernel.
	KernelEvals   int64
	FallbackEvals int64
}

// Record adds one execution producing rows in ns nanoseconds.
func (m *OpMetrics) Record(rows int, ns int64) {
	atomic.AddInt64(&m.Calls, 1)
	atomic.AddInt64(&m.RowsOut, int64(rows))
	atomic.AddInt64(&m.WallNs, ns)
}

// NoteWorkers records a parallel fan-out of w workers.
func (m *OpMetrics) NoteWorkers(w int) {
	for {
		cur := atomic.LoadInt64(&m.MaxWorkers)
		if int64(w) <= cur {
			return
		}
		if atomic.CompareAndSwapInt64(&m.MaxWorkers, cur, int64(w)) {
			return
		}
	}
}

// AddBatch records one vectorized batch with its kernel/fallback
// expression-evaluation row counts.
func (m *OpMetrics) AddBatch(kernelEvals, fallbackEvals int64) {
	atomic.AddInt64(&m.Batches, 1)
	atomic.AddInt64(&m.KernelEvals, kernelEvals)
	atomic.AddInt64(&m.FallbackEvals, fallbackEvals)
}

// AddEval counts one actual subquery evaluation.
func (m *OpMetrics) AddEval() { atomic.AddInt64(&m.Evals, 1) }

// AddCacheHit counts one memo-cache-served evaluation.
func (m *OpMetrics) AddCacheHit() { atomic.AddInt64(&m.CacheHits, 1) }

// Load returns a consistent-enough snapshot taken with atomic loads,
// safe to call while the plan is still executing.
func (m *OpMetrics) Load() OpMetrics {
	return OpMetrics{
		Calls:         atomic.LoadInt64(&m.Calls),
		RowsOut:       atomic.LoadInt64(&m.RowsOut),
		WallNs:        atomic.LoadInt64(&m.WallNs),
		MaxWorkers:    atomic.LoadInt64(&m.MaxWorkers),
		Evals:         atomic.LoadInt64(&m.Evals),
		CacheHits:     atomic.LoadInt64(&m.CacheHits),
		Batches:       atomic.LoadInt64(&m.Batches),
		KernelEvals:   atomic.LoadInt64(&m.KernelEvals),
		FallbackEvals: atomic.LoadInt64(&m.FallbackEvals),
	}
}

// MetricsSource resolves the metrics collected for a node or a subquery
// expression; the executor's Profile implements it.
type MetricsSource interface {
	NodeMetrics(Node) *OpMetrics
	SubqueryMetrics(*Subquery) *OpMetrics
}

// ExplainAnalyzeTree renders the plan annotated with the metrics in src:
// per operator rows out, loops, worker fan-out, and inclusive wall time;
// per subquery block, actual evaluations vs memo-cache hits.
func ExplainAnalyzeTree(n Node, src MetricsSource) string {
	var sb strings.Builder
	explainInto(&sb, n, 0, src)
	return sb.String()
}

// annotateNode renders the metrics suffix for one operator line.
func annotateNode(m *OpMetrics) string {
	s := m.Load()
	var sb strings.Builder
	fmt.Fprintf(&sb, " (rows=%d", s.RowsOut)
	if s.Calls > 1 {
		fmt.Fprintf(&sb, " loops=%d", s.Calls)
	}
	if s.MaxWorkers > 1 {
		fmt.Fprintf(&sb, " workers=%d", s.MaxWorkers)
	}
	if s.Batches > 0 {
		// Average rows per batch follows from rows= and batches=; the
		// kernel/fallback split shows how much of the expression work
		// actually ran columnarly.
		fmt.Fprintf(&sb, " batches=%d kernel=%d fallback=%d", s.Batches, s.KernelEvals, s.FallbackEvals)
	}
	fmt.Fprintf(&sb, " time=%s)", time.Duration(s.WallNs))
	return sb.String()
}

// annotateSubquery renders the metrics suffix for one subquery block.
func annotateSubquery(m *OpMetrics) string {
	s := m.Load()
	return fmt.Sprintf(" (evals=%d hits=%d)", s.Evals, s.CacheHits)
}
