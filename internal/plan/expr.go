// Package plan defines the logical plan: relational operator nodes and a
// typed scalar expression IR. The binder lowers ASTs into this IR; the
// optimizer rewrites it; the executor interprets it.
//
// Measure references never survive into the IR as opaque values: the
// binder (with internal/core) expands every measure use into a correlated
// scalar Subquery over the measure's base relation, exactly as the paper's
// §4.2 prescribes — the Subquery's filter predicate is the reified
// evaluation context, and CorrRef nodes play the role of the paper's
// lambda-captured outer row.
package plan

import (
	"fmt"
	"strings"

	"github.com/measures-sql/msql/internal/sqltypes"
)

// Expr is a typed scalar expression over an operator's input row.
type Expr interface {
	Type() sqltypes.Type
	String() string
}

// ColRef references a column of the current operator's input row.
type ColRef struct {
	Index int
	Name  string
	Typ   sqltypes.Type
}

// Type implements Expr.
func (e *ColRef) Type() sqltypes.Type { return e.Typ }

// String implements Expr.
func (e *ColRef) String() string { return fmt.Sprintf("$%d:%s", e.Index, e.Name) }

// CorrRef references a column of an enclosing query's current row.
// Levels counts how many subquery boundaries up the target row lives
// (1 = the immediately enclosing query).
type CorrRef struct {
	Levels int
	Index  int
	Name   string
	Typ    sqltypes.Type
}

// Type implements Expr.
func (e *CorrRef) Type() sqltypes.Type { return e.Typ }

// String implements Expr.
func (e *CorrRef) String() string { return fmt.Sprintf("corr^%d$%d:%s", e.Levels, e.Index, e.Name) }

// Lit is a literal value.
type Lit struct {
	Val sqltypes.Value
}

// Type implements Expr.
func (e *Lit) Type() sqltypes.Type { return sqltypes.Type{Kind: e.Val.K} }

// String implements Expr.
func (e *Lit) String() string { return e.Val.SQLLiteral() }

// Param is a prepared-statement parameter, bound at execution time from
// exec.Settings.Params. Index is 0-based (the binder shifts the SQL
// level's 1-based $n). Params are pure: a cached plan containing them is
// reusable across executions, with only the parameter vector changing.
type Param struct {
	Index int
	Typ   sqltypes.Type
}

// Type implements Expr.
func (e *Param) Type() sqltypes.Type { return e.Typ }

// String implements Expr.
func (e *Param) String() string { return fmt.Sprintf("param$%d", e.Index+1) }

// Call invokes a scalar function or operator from the function registry
// (arithmetic, comparisons, YEAR, UPPER, LIKE, ...).
type Call struct {
	Name string
	Args []Expr
	Typ  sqltypes.Type
	// Pos locates the call in the statement text for runtime error
	// reporting: source byte offset + 1, so 0 means unknown (synthesized
	// calls from desugaring and measure expansion carry no position).
	Pos int
}

// Type implements Expr.
func (e *Call) Type() sqltypes.Type { return e.Typ }

// String implements Expr.
func (e *Call) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
}

// And is three-valued, short-circuiting AND.
type And struct{ L, R Expr }

// Type implements Expr.
func (e *And) Type() sqltypes.Type { return sqltypes.Type{Kind: sqltypes.KindBool} }

// String implements Expr.
func (e *And) String() string { return fmt.Sprintf("(%s AND %s)", e.L, e.R) }

// Or is three-valued, short-circuiting OR.
type Or struct{ L, R Expr }

// Type implements Expr.
func (e *Or) Type() sqltypes.Type { return sqltypes.Type{Kind: sqltypes.KindBool} }

// String implements Expr.
func (e *Or) String() string { return fmt.Sprintf("(%s OR %s)", e.L, e.R) }

// Not is three-valued NOT.
type Not struct{ X Expr }

// Type implements Expr.
func (e *Not) Type() sqltypes.Type { return sqltypes.Type{Kind: sqltypes.KindBool} }

// String implements Expr.
func (e *Not) String() string { return fmt.Sprintf("NOT %s", e.X) }

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Neg bool
}

// Type implements Expr.
func (e *IsNull) Type() sqltypes.Type { return sqltypes.Type{Kind: sqltypes.KindBool} }

// String implements Expr.
func (e *IsNull) String() string {
	if e.Neg {
		return fmt.Sprintf("%s IS NOT NULL", e.X)
	}
	return fmt.Sprintf("%s IS NULL", e.X)
}

// IsDistinct is x IS [NOT] DISTINCT FROM y; never returns NULL. The
// evaluation-context predicates generated for measures use the NOT form
// so NULL dimension values group correctly (paper §3.3 footnote).
type IsDistinct struct {
	L, R Expr
	Neg  bool // true = IS NOT DISTINCT FROM
}

// Type implements Expr.
func (e *IsDistinct) Type() sqltypes.Type { return sqltypes.Type{Kind: sqltypes.KindBool} }

// String implements Expr.
func (e *IsDistinct) String() string {
	op := "IS DISTINCT FROM"
	if e.Neg {
		op = "IS NOT DISTINCT FROM"
	}
	return fmt.Sprintf("(%s %s %s)", e.L, op, e.R)
}

// InList is x [NOT] IN (e1, ..., en) with SQL NULL semantics.
type InList struct {
	X    Expr
	List []Expr
	Neg  bool
}

// Type implements Expr.
func (e *InList) Type() sqltypes.Type { return sqltypes.Type{Kind: sqltypes.KindBool} }

// String implements Expr.
func (e *InList) String() string {
	items := make([]string, len(e.List))
	for i, x := range e.List {
		items[i] = x.String()
	}
	neg := ""
	if e.Neg {
		neg = " NOT"
	}
	return fmt.Sprintf("%s%s IN (%s)", e.X, neg, strings.Join(items, ", "))
}

// CaseWhen is one arm of a searched CASE.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

// Case is a searched CASE expression (simple CASE is desugared by the
// binder).
type Case struct {
	Whens []CaseWhen
	Else  Expr // nil means ELSE NULL
	Typ   sqltypes.Type
}

// Type implements Expr.
func (e *Case) Type() sqltypes.Type { return e.Typ }

// String implements Expr.
func (e *Case) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range e.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	if e.Else != nil {
		fmt.Fprintf(&sb, " ELSE %s", e.Else)
	}
	sb.WriteString(" END")
	return sb.String()
}

// Cast converts to a target kind.
type Cast struct {
	X    Expr
	Kind sqltypes.Kind
}

// Type implements Expr.
func (e *Cast) Type() sqltypes.Type { return sqltypes.Type{Kind: e.Kind} }

// String implements Expr.
func (e *Cast) String() string { return fmt.Sprintf("CAST(%s AS %s)", e.X, e.Kind) }

// AggRef references the i-th aggregate output of the enclosing Aggregate
// node; only valid in expressions evaluated above an Aggregate.
type AggRef struct {
	Index int
	Typ   sqltypes.Type
}

// Type implements Expr.
func (e *AggRef) Type() sqltypes.Type { return e.Typ }

// String implements Expr.
func (e *AggRef) String() string { return fmt.Sprintf("agg$%d", e.Index) }

// SubqueryMode distinguishes the ways a subquery is used as an expression.
type SubqueryMode uint8

const (
	// SubScalar is a scalar subquery: one column, at most one row.
	SubScalar SubqueryMode = iota
	// SubExists is EXISTS (query).
	SubExists
	// SubIn is (x1, ..., xn) IN (query).
	SubIn
)

// Subquery evaluates a nested plan as an expression. When Memo is set the
// executor caches results keyed on the values of the correlated outer
// columns the plan depends on — the "localized self-join" execution
// strategy of paper §5.1 (the executor discovers those dependencies by
// walking the plan).
type Subquery struct {
	Plan  Node
	Mode  SubqueryMode
	Neg   bool   // for [NOT] EXISTS / [NOT] IN
	Exprs []Expr // IN left-hand tuple (evaluated in the outer row)
	Typ   sqltypes.Type
	Memo  bool
	// NullSafe IN-membership treats NULL as equal to NULL (IS NOT
	// DISTINCT FROM semantics); evaluation-context link terms use it so
	// NULL dimension values group correctly. Plain SQL IN leaves it off.
	NullSafe bool
	// Label carries a human-readable origin, e.g. "measure profitMargin",
	// used by EXPLAIN.
	Label string
}

// Type implements Expr.
func (e *Subquery) Type() sqltypes.Type { return e.Typ }

// String implements Expr.
func (e *Subquery) String() string {
	var mode string
	switch e.Mode {
	case SubScalar:
		mode = "scalar"
	case SubExists:
		mode = "exists"
	case SubIn:
		mode = "in"
	}
	memo := ""
	if e.Memo {
		memo = " memo"
	}
	label := ""
	if e.Label != "" {
		label = " [" + e.Label + "]"
	}
	return fmt.Sprintf("subquery(%s%s)%s", mode, memo, label)
}

// WalkExprs calls f on e and all nested expressions (not descending into
// Subquery plans).
func WalkExprs(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch e := e.(type) {
	case *Call:
		for _, a := range e.Args {
			WalkExprs(a, f)
		}
	case *And:
		WalkExprs(e.L, f)
		WalkExprs(e.R, f)
	case *Or:
		WalkExprs(e.L, f)
		WalkExprs(e.R, f)
	case *Not:
		WalkExprs(e.X, f)
	case *IsNull:
		WalkExprs(e.X, f)
	case *IsDistinct:
		WalkExprs(e.L, f)
		WalkExprs(e.R, f)
	case *InList:
		WalkExprs(e.X, f)
		for _, x := range e.List {
			WalkExprs(x, f)
		}
	case *Case:
		for _, w := range e.Whens {
			WalkExprs(w.Cond, f)
			WalkExprs(w.Then, f)
		}
		WalkExprs(e.Else, f)
	case *Cast:
		WalkExprs(e.X, f)
	case *Subquery:
		for _, x := range e.Exprs {
			WalkExprs(x, f)
		}
	}
}
