package plan

// TransformNodeExprs returns a copy of the plan with f applied (via
// TransformExpr) to every expression held by every node. Nested Subquery
// plans are also transformed; f receives each expression together with
// the subquery depth at which it occurs (0 = expressions of n itself).
func TransformNodeExprs(n Node, f func(e Expr, depth int) Expr) Node {
	return transformNode(n, f, 0)
}

func transformNode(n Node, f func(Expr, int) Expr, depth int) Node {
	tx := func(e Expr) Expr {
		if e == nil {
			return nil
		}
		return TransformExpr(e, func(x Expr) Expr {
			if sq, ok := x.(*Subquery); ok {
				c := *sq
				c.Plan = transformNode(sq.Plan, f, depth+1)
				return f(&c, depth)
			}
			return f(x, depth)
		})
	}
	switch n := n.(type) {
	case *Scan:
		return n
	case *Values:
		c := *n
		c.Rows = make([][]Expr, len(n.Rows))
		for i, row := range n.Rows {
			c.Rows[i] = make([]Expr, len(row))
			for j, e := range row {
				c.Rows[i][j] = tx(e)
			}
		}
		return &c
	case *Filter:
		c := *n
		c.Input = transformNode(n.Input, f, depth)
		c.Pred = tx(n.Pred)
		return &c
	case *Project:
		c := *n
		c.Input = transformNode(n.Input, f, depth)
		c.Exprs = make([]NamedExpr, len(n.Exprs))
		for i, ne := range n.Exprs {
			c.Exprs[i] = NamedExpr{Expr: tx(ne.Expr), Col: ne.Col}
		}
		return &c
	case *Join:
		c := *n
		c.Left = transformNode(n.Left, f, depth)
		c.Right = transformNode(n.Right, f, depth)
		c.EquiLeft = txList(n.EquiLeft, tx)
		c.EquiRight = txList(n.EquiRight, tx)
		c.Residual = tx(n.Residual)
		return &c
	case *Aggregate:
		c := *n
		c.Input = transformNode(n.Input, f, depth)
		c.GroupExprs = txList(n.GroupExprs, tx)
		c.Aggs = make([]AggCall, len(n.Aggs))
		for i, a := range n.Aggs {
			a.Args = txList(a.Args, tx)
			a.WithinDistinct = txList(a.WithinDistinct, tx)
			a.Filter = tx(a.Filter)
			c.Aggs[i] = a
		}
		return &c
	case *Sort:
		c := *n
		c.Input = transformNode(n.Input, f, depth)
		c.Items = make([]SortItem, len(n.Items))
		for i, s := range n.Items {
			s.Expr = tx(s.Expr)
			c.Items[i] = s
		}
		return &c
	case *Limit:
		c := *n
		c.Input = transformNode(n.Input, f, depth)
		c.Count = tx(n.Count)
		c.Offset = tx(n.Offset)
		return &c
	case *Distinct:
		c := *n
		c.Input = transformNode(n.Input, f, depth)
		return &c
	case *SetOp:
		c := *n
		c.Left = transformNode(n.Left, f, depth)
		c.Right = transformNode(n.Right, f, depth)
		return &c
	case *Window:
		c := *n
		c.Input = transformNode(n.Input, f, depth)
		c.Funcs = make([]WindowFunc, len(n.Funcs))
		for i, w := range n.Funcs {
			w.Args = txList(w.Args, tx)
			w.PartitionBy = txList(w.PartitionBy, tx)
			items := make([]SortItem, len(w.OrderBy))
			for j, s := range w.OrderBy {
				s.Expr = tx(s.Expr)
				items[j] = s
			}
			w.OrderBy = items
			c.Funcs[i] = w
		}
		return &c
	default:
		return n
	}
}

func txList(list []Expr, tx func(Expr) Expr) []Expr {
	if list == nil {
		return nil
	}
	out := make([]Expr, len(list))
	for i, e := range list {
		out[i] = tx(e)
	}
	return out
}
