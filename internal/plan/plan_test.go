package plan

import (
	"strings"
	"testing"

	"github.com/measures-sql/msql/internal/sqltypes"
)

func intT() sqltypes.Type { return sqltypes.Type{Kind: sqltypes.KindInt} }

func col(i int, name string) *ColRef { return &ColRef{Index: i, Name: name, Typ: intT()} }

func TestExprStrings(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{col(0, "a"), "$0:a"},
		{&CorrRef{Levels: 2, Index: 1, Name: "b", Typ: intT()}, "corr^2$1:b"},
		{&Lit{Val: sqltypes.NewString("x")}, "'x'"},
		{&Call{Name: "+", Args: []Expr{col(0, "a"), &Lit{Val: sqltypes.NewInt(1)}}, Typ: intT()}, "+($0:a, 1)"},
		{&And{L: &Lit{Val: sqltypes.NewBool(true)}, R: &Lit{Val: sqltypes.NewBool(false)}}, "(TRUE AND FALSE)"},
		{&IsDistinct{L: col(0, "a"), R: col(1, "b"), Neg: true}, "($0:a IS NOT DISTINCT FROM $1:b)"},
		{&AggRef{Index: 2, Typ: intT()}, "agg$2"},
		{&InList{X: col(0, "a"), List: []Expr{&Lit{Val: sqltypes.NewInt(1)}}}, "$0:a IN (1)"},
		{&Cast{X: col(0, "a"), Kind: sqltypes.KindString}, "CAST($0:a AS VARCHAR)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("got %q want %q", got, c.want)
		}
	}
}

func TestShiftCorr(t *testing.T) {
	e := &Call{Name: "+", Args: []Expr{
		col(0, "a"),
		&CorrRef{Levels: 1, Index: 3, Name: "b", Typ: intT()},
	}, Typ: intT()}
	shifted := ShiftCorr(e, 1)
	call := shifted.(*Call)
	if cr := call.Args[0].(*CorrRef); cr.Levels != 1 || cr.Index != 0 {
		t.Errorf("ColRef should become level-1 CorrRef: %v", call.Args[0])
	}
	if cr := call.Args[1].(*CorrRef); cr.Levels != 2 {
		t.Errorf("existing CorrRef should gain a level: %v", call.Args[1])
	}
	// Original untouched.
	if _, ok := e.Args[0].(*ColRef); !ok {
		t.Error("ShiftCorr must not mutate the input")
	}
}

func TestSubstituteCols(t *testing.T) {
	e := &Call{Name: "+", Args: []Expr{col(0, "a"), col(1, "b")}, Typ: intT()}
	out := SubstituteCols(e, func(c *ColRef) (Expr, bool) {
		if c.Index == 0 {
			return &Lit{Val: sqltypes.NewInt(9)}, true
		}
		return nil, false
	})
	if out.String() != "+(9, $1:b)" {
		t.Errorf("got %q", out.String())
	}
}

func TestWalkAndHasCorrRefs(t *testing.T) {
	inner := &Subquery{
		Plan: &Filter{
			Input: &Values{Sch: &Schema{}},
			Pred:  &CorrRef{Levels: 2, Index: 0, Name: "x", Typ: intT()},
		},
		Mode: SubScalar,
		Typ:  intT(),
	}
	e := &Call{Name: "+", Args: []Expr{col(0, "a"), inner}, Typ: intT()}
	if !HasCorrRefs(e) {
		t.Error("nested plan with outer refs should report correlations")
	}
	count := 0
	WalkExprs(e, func(Expr) { count++ })
	if count < 3 {
		t.Errorf("WalkExprs visited %d nodes", count)
	}

	pure := &Call{Name: "+", Args: []Expr{col(0, "a"), col(1, "b")}, Typ: intT()}
	if HasCorrRefs(pure) {
		t.Error("pure expression misreported correlations")
	}
}

func TestPlanHasOuterRefs(t *testing.T) {
	// A subquery whose refs stay inside its own frames is not correlated.
	selfContained := &Filter{
		Input: &Values{Sch: &Schema{}},
		Pred: &Subquery{
			Plan: &Filter{
				Input: &Values{Sch: &Schema{}},
				Pred:  &CorrRef{Levels: 1, Index: 0, Name: "x", Typ: intT()},
			},
			Mode: SubExists,
			Typ:  sqltypes.Type{Kind: sqltypes.KindBool},
		},
	}
	if PlanHasOuterRefs(selfContained, 0) {
		t.Error("level-1 ref inside a nested subquery does not escape the outer plan")
	}
}

func TestExplainTree(t *testing.T) {
	scan := &Values{Sch: &Schema{Cols: []Col{{Name: "a", Typ: intT()}}}}
	tree := &Project{
		Input: &Filter{Input: scan, Pred: &IsNull{X: col(0, "a")}},
		Exprs: []NamedExpr{{Expr: col(0, "a"), Col: Col{Name: "a", Typ: intT()}}},
		Sch:   &Schema{Cols: []Col{{Name: "a", Typ: intT()}}},
	}
	out := ExplainTree(tree)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("explain lines: %v", lines)
	}
	if !strings.HasPrefix(lines[0], "Project") ||
		!strings.HasPrefix(strings.TrimSpace(lines[1]), "Filter") ||
		!strings.HasPrefix(strings.TrimSpace(lines[2]), "Values") {
		t.Errorf("explain:\n%s", out)
	}
	// Children are indented.
	if !strings.HasPrefix(lines[1], "  ") {
		t.Error("child not indented")
	}
}

func TestTransformNodeExprsDepth(t *testing.T) {
	inner := &Subquery{
		Plan: &Filter{Input: &Values{Sch: &Schema{}}, Pred: col(0, "deep")},
		Mode: SubScalar,
		Typ:  intT(),
	}
	root := &Filter{Input: &Values{Sch: &Schema{}}, Pred: &Call{Name: "AND2", Args: []Expr{col(0, "top"), inner}, Typ: intT()}}
	var seen []int
	TransformNodeExprs(root, func(e Expr, depth int) Expr {
		if c, ok := e.(*ColRef); ok {
			_ = c
			seen = append(seen, depth)
		}
		return e
	})
	// "top" at depth 0, "deep" at depth 1.
	has0, has1 := false, false
	for _, d := range seen {
		if d == 0 {
			has0 = true
		}
		if d == 1 {
			has1 = true
		}
	}
	if !has0 || !has1 {
		t.Errorf("depths seen: %v", seen)
	}
	// Copies, not mutations: replacing a col in the copy leaves root alone.
	out := TransformNodeExprs(root, func(e Expr, _ int) Expr {
		if _, ok := e.(*ColRef); ok {
			return &Lit{Val: sqltypes.NewInt(0)}
		}
		return e
	})
	if strings.Contains(out.(*Filter).Pred.String(), "top") {
		t.Error("transform did not replace in copy")
	}
	if !strings.Contains(root.Pred.String(), "top") {
		t.Error("transform mutated the original")
	}
}

func TestMeasureInfoDimByName(t *testing.T) {
	info := &MeasureInfo{Dims: []Dim{{Name: "Alpha", Expr: col(0, "alpha")}}}
	if _, ok := info.DimByName("ALPHA"); !ok {
		t.Error("DimByName should be case-insensitive")
	}
	if _, ok := info.DimByName("beta"); ok {
		t.Error("missing dim reported found")
	}
}

func TestJoinKindAndAggString(t *testing.T) {
	if JoinLeft.String() != "LEFT" || JoinSemi.String() != "SEMI" {
		t.Error("join kind strings")
	}
	a := AggCall{Name: "SUM", Args: []Expr{col(0, "x")}, Distinct: true, Typ: intT()}
	if a.String() != "SUM(DISTINCT $0:x)" {
		t.Errorf("agg string: %q", a.String())
	}
	g := AggCall{Name: "GROUPING", KeyIndex: 1}
	if g.String() != "GROUPING(key$1)" {
		t.Errorf("grouping string: %q", g.String())
	}
}
