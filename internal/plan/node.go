package plan

import (
	"fmt"
	"strings"

	"github.com/measures-sql/msql/internal/sqltypes"
)

// Col describes one output column of a plan node. A measure column keeps
// its MeasureInfo so that enclosing queries can bind to it; its runtime
// row slot always holds NULL (measures have no per-row value — they are
// context-sensitive expressions, paper §3.4).
type Col struct {
	Name    string
	Typ     sqltypes.Type
	Measure *MeasureInfo
}

// Schema is an ordered list of output columns.
type Schema struct {
	Cols []Col
}

// ColNames returns the column names in order.
func (s *Schema) ColNames() []string {
	names := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		names[i] = c.Name
	}
	return names
}

// Dim is one dimension of a measure: a name and its defining expression
// over the measure's base relation.
type Dim struct {
	Name string
	Expr Expr
}

// MeasureInfo is the bound definition of a measure column: everything a
// consuming query needs to evaluate it in an arbitrary evaluation context.
// This realizes the paper's auxiliary function computeM (§4.2): Base and
// Formula fixed at definition time, the row predicate supplied at each
// call site.
type MeasureInfo struct {
	Name string
	// ValueType is the scalar result type (the measure's declared type is
	// ValueType MEASURE).
	ValueType sqltypes.Type
	// Base produces the rows of the defining table, with the defining
	// query's own WHERE clause baked in (it "cannot be subverted").
	Base Node
	// Formula is a scalar expression over Base's row that may contain
	// AggCall nodes, e.g. (SUM(revenue) - SUM(cost)) / SUM(revenue).
	Formula Expr
	// Aggs are the aggregate calls appearing in Formula, in the order
	// AggRef indices reference them.
	Aggs []AggCall
	// Dims are the measure's dimension columns: the non-measure columns
	// of the defining table, as expressions over Base.
	Dims []Dim
}

// DimByName returns the dimension with the given (case-insensitive) name.
func (m *MeasureInfo) DimByName(name string) (Dim, bool) {
	for _, d := range m.Dims {
		if strings.EqualFold(d.Name, name) {
			return d, true
		}
	}
	return Dim{}, false
}

// AggCall is one aggregate invocation inside an Aggregate node (or a
// measure formula, which the expansion turns into an Aggregate node).
type AggCall struct {
	Name     string
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool
	Filter   Expr // FILTER (WHERE ...), nil if absent
	// WithinDistinct restricts the aggregate to one row per distinct key
	// tuple (Calcite's WITHIN DISTINCT; paper §6.3). Argument values must
	// be consistent within a tuple or execution fails.
	WithinDistinct []Expr
	// KeyIndex is used by GROUPING: the index of the group key it reports
	// on. -1 otherwise.
	KeyIndex int
	Typ      sqltypes.Type
}

// String renders the aggregate call for EXPLAIN.
func (a AggCall) String() string {
	if a.Name == "GROUPING" {
		return fmt.Sprintf("GROUPING(key$%d)", a.KeyIndex)
	}
	var sb strings.Builder
	sb.WriteString(a.Name)
	sb.WriteByte('(')
	if a.Star {
		sb.WriteByte('*')
	} else {
		if a.Distinct {
			sb.WriteString("DISTINCT ")
		}
		for i, x := range a.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(x.String())
		}
	}
	sb.WriteByte(')')
	if len(a.WithinDistinct) > 0 {
		sb.WriteString(" WITHIN DISTINCT (")
		for i, k := range a.WithinDistinct {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(k.String())
		}
		sb.WriteString(")")
	}
	if a.Filter != nil {
		fmt.Fprintf(&sb, " FILTER (%s)", a.Filter)
	}
	return sb.String()
}

// RowSource supplies rows for a Scan without the plan package needing to
// know about the catalog; catalog base tables implement it.
type RowSource interface {
	Name() string
	ColNames() []string
	ColTypes() []sqltypes.Type
	Rows() [][]sqltypes.Value
}

// Node is a logical/physical plan operator.
type Node interface {
	Schema() *Schema
	Children() []Node
	// Explain returns a one-line description (children are printed
	// indented by the EXPLAIN formatter).
	Explain() string
}

// Scan reads all rows from a RowSource.
type Scan struct {
	Source RowSource
	Alias  string
	Sch    *Schema
}

// Schema implements Node.
func (n *Scan) Schema() *Schema { return n.Sch }

// Children implements Node.
func (n *Scan) Children() []Node { return nil }

// Explain implements Node.
func (n *Scan) Explain() string {
	if n.Alias != "" && n.Alias != n.Source.Name() {
		return fmt.Sprintf("Scan %s AS %s", n.Source.Name(), n.Alias)
	}
	return "Scan " + n.Source.Name()
}

// Values produces a fixed list of rows of constant expressions; with one
// empty row it implements SELECT-without-FROM.
type Values struct {
	Rows [][]Expr
	Sch  *Schema
}

// Schema implements Node.
func (n *Values) Schema() *Schema { return n.Sch }

// Children implements Node.
func (n *Values) Children() []Node { return nil }

// Explain implements Node.
func (n *Values) Explain() string { return fmt.Sprintf("Values (%d rows)", len(n.Rows)) }

// Filter passes through rows for which Pred is TRUE.
type Filter struct {
	Input Node
	Pred  Expr
}

// Schema implements Node.
func (n *Filter) Schema() *Schema { return n.Input.Schema() }

// Children implements Node.
func (n *Filter) Children() []Node { return []Node{n.Input} }

// Explain implements Node.
func (n *Filter) Explain() string { return "Filter " + n.Pred.String() }

// NamedExpr pairs a projection expression with its output column.
type NamedExpr struct {
	Expr Expr
	Col  Col
}

// Project computes a new row from the input row.
type Project struct {
	Input Node
	Exprs []NamedExpr
	Sch   *Schema
}

// Schema implements Node.
func (n *Project) Schema() *Schema { return n.Sch }

// Children implements Node.
func (n *Project) Children() []Node { return []Node{n.Input} }

// Explain implements Node.
func (n *Project) Explain() string {
	parts := make([]string, len(n.Exprs))
	for i, e := range n.Exprs {
		parts[i] = fmt.Sprintf("%s AS %s", e.Expr, e.Col.Name)
	}
	return "Project " + strings.Join(parts, ", ")
}

// JoinKind enumerates join types.
type JoinKind uint8

const (
	// JoinInner is an inner join.
	JoinInner JoinKind = iota
	// JoinLeft is a left outer join.
	JoinLeft
	// JoinRight is a right outer join.
	JoinRight
	// JoinFull is a full outer join.
	JoinFull
	// JoinCross is a cross join.
	JoinCross
	// JoinSemi passes left rows with at least one match.
	JoinSemi
)

// String returns the SQL spelling.
func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "INNER"
	case JoinLeft:
		return "LEFT"
	case JoinRight:
		return "RIGHT"
	case JoinFull:
		return "FULL"
	case JoinCross:
		return "CROSS"
	case JoinSemi:
		return "SEMI"
	default:
		return "?"
	}
}

// Join combines two inputs. EquiLeft/EquiRight hold the equality key
// pairs extracted from the condition (enabling the hash path); Residual
// holds the rest of the predicate, evaluated over the concatenated row.
// For semi joins the output schema is the left schema.
type Join struct {
	Kind      JoinKind
	Left      Node
	Right     Node
	EquiLeft  []Expr // over left row
	EquiRight []Expr // over right row
	Residual  Expr   // over concatenated row, nil if none
	Sch       *Schema
}

// Schema implements Node.
func (n *Join) Schema() *Schema { return n.Sch }

// Children implements Node.
func (n *Join) Children() []Node { return []Node{n.Left, n.Right} }

// Explain implements Node.
func (n *Join) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s Join", n.Kind)
	for i := range n.EquiLeft {
		if i == 0 {
			sb.WriteString(" on ")
		} else {
			sb.WriteString(" AND ")
		}
		fmt.Fprintf(&sb, "%s = %s", n.EquiLeft[i], n.EquiRight[i])
	}
	if n.Residual != nil {
		fmt.Fprintf(&sb, " residual %s", n.Residual)
	}
	return sb.String()
}

// Aggregate groups Input by GroupExprs and computes Aggs. Sets lists the
// grouping sets as index lists into GroupExprs; a plain GROUP BY has one
// set containing every index, a global aggregate has one empty set, and
// ROLLUP/CUBE/GROUPING SETS produce several. Output columns are the group
// keys (NULL when absent from the row's set) followed by the aggregates.
type Aggregate struct {
	Input      Node
	GroupExprs []Expr
	Sets       [][]int
	Aggs       []AggCall
	Sch        *Schema
}

// Schema implements Node.
func (n *Aggregate) Schema() *Schema { return n.Sch }

// Children implements Node.
func (n *Aggregate) Children() []Node { return []Node{n.Input} }

// Explain implements Node.
func (n *Aggregate) Explain() string {
	var sb strings.Builder
	sb.WriteString("Aggregate")
	if len(n.GroupExprs) > 0 {
		sb.WriteString(" by [")
		for i, g := range n.GroupExprs {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
		sb.WriteString("]")
	}
	if len(n.Sets) > 1 {
		fmt.Fprintf(&sb, " sets=%v", n.Sets)
	}
	for i, a := range n.Aggs {
		if i == 0 {
			sb.WriteString(" aggs [")
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	if len(n.Aggs) > 0 {
		sb.WriteString("]")
	}
	return sb.String()
}

// SortItem is one sort key.
type SortItem struct {
	Expr       Expr
	Desc       bool
	NullsFirst bool
}

// Sort orders rows by Items.
type Sort struct {
	Input Node
	Items []SortItem
}

// Schema implements Node.
func (n *Sort) Schema() *Schema { return n.Input.Schema() }

// Children implements Node.
func (n *Sort) Children() []Node { return []Node{n.Input} }

// Explain implements Node.
func (n *Sort) Explain() string {
	parts := make([]string, len(n.Items))
	for i, s := range n.Items {
		dir := "ASC"
		if s.Desc {
			dir = "DESC"
		}
		parts[i] = fmt.Sprintf("%s %s", s.Expr, dir)
	}
	return "Sort " + strings.Join(parts, ", ")
}

// Limit truncates the input to Count rows after skipping Offset rows;
// either may be nil.
type Limit struct {
	Input  Node
	Count  Expr
	Offset Expr
}

// Schema implements Node.
func (n *Limit) Schema() *Schema { return n.Input.Schema() }

// Children implements Node.
func (n *Limit) Children() []Node { return []Node{n.Input} }

// Explain implements Node.
func (n *Limit) Explain() string {
	s := "Limit"
	if n.Count != nil {
		s += " " + n.Count.String()
	}
	if n.Offset != nil {
		s += " offset " + n.Offset.String()
	}
	return s
}

// Distinct removes duplicate rows.
type Distinct struct {
	Input Node
}

// Schema implements Node.
func (n *Distinct) Schema() *Schema { return n.Input.Schema() }

// Children implements Node.
func (n *Distinct) Children() []Node { return []Node{n.Input} }

// Explain implements Node.
func (n *Distinct) Explain() string { return "Distinct" }

// SetOp combines two inputs with UNION / INTERSECT / EXCEPT semantics.
type SetOp struct {
	Op    string // "UNION", "INTERSECT", "EXCEPT"
	All   bool
	Left  Node
	Right Node
	Sch   *Schema
}

// Schema implements Node.
func (n *SetOp) Schema() *Schema { return n.Sch }

// Children implements Node.
func (n *SetOp) Children() []Node { return []Node{n.Left, n.Right} }

// Explain implements Node.
func (n *SetOp) Explain() string {
	s := n.Op
	if n.All {
		s += " ALL"
	}
	return s
}

// WindowFunc is one window computation appended to the row by a Window
// node.
type WindowFunc struct {
	Name        string
	Args        []Expr
	Star        bool
	PartitionBy []Expr
	OrderBy     []SortItem
	// FrameRows, when true with OrderBy present, restricts aggregates to
	// the default running frame (UNBOUNDED PRECEDING .. CURRENT ROW);
	// without OrderBy the whole partition is used.
	Running bool
	Typ     sqltypes.Type
}

// Window appends one column per Funcs entry to each input row.
type Window struct {
	Input Node
	Funcs []WindowFunc
	Sch   *Schema
}

// Schema implements Node.
func (n *Window) Schema() *Schema { return n.Sch }

// Children implements Node.
func (n *Window) Children() []Node { return []Node{n.Input} }

// Explain implements Node.
func (n *Window) Explain() string {
	parts := make([]string, len(n.Funcs))
	for i, f := range n.Funcs {
		parts[i] = f.Name
	}
	return "Window " + strings.Join(parts, ", ")
}

// ExplainTree renders the plan as an indented tree. Subquery plans held
// by a node's expressions (measure expansions, IN/EXISTS, context links)
// are printed as nested blocks beneath the node.
func ExplainTree(n Node) string {
	var sb strings.Builder
	explainInto(&sb, n, 0, nil)
	return sb.String()
}

// explainInto renders one node and its subtree. With a non-nil
// MetricsSource it appends the EXPLAIN ANALYZE annotations; with nil it
// produces the plain EXPLAIN output.
func explainInto(sb *strings.Builder, n Node, depth int, src MetricsSource) {
	indent := func(d int) {
		for i := 0; i < d; i++ {
			sb.WriteString("  ")
		}
	}
	indent(depth)
	sb.WriteString(n.Explain())
	if src != nil {
		if m := src.NodeMetrics(n); m != nil {
			sb.WriteString(annotateNode(m))
		}
	}
	sb.WriteByte('\n')
	visitNodeExprs(n, func(e Expr) {
		WalkExprs(e, func(x Expr) {
			if sq, ok := x.(*Subquery); ok {
				indent(depth + 1)
				label := sq.Label
				if label == "" {
					label = sq.String()
				}
				sb.WriteString("[" + label + "]")
				if src != nil {
					if m := src.SubqueryMetrics(sq); m != nil {
						sb.WriteString(annotateSubquery(m))
					}
				}
				sb.WriteByte('\n')
				explainInto(sb, sq.Plan, depth+2, src)
			}
		})
	})
	for _, c := range n.Children() {
		explainInto(sb, c, depth+1, src)
	}
}
