package plan

import "github.com/measures-sql/msql/internal/fn"

// Parallelism safety: the executor may evaluate an operator's
// expressions concurrently for different rows (morsel parallelism) only
// when re-ordering those evaluations cannot change results. Every
// expression form in the IR is pure except calls to volatile scalar
// functions (fn.Scalar.Volatile, e.g. RANDOM), whose per-row results
// depend on evaluation order. Subquery evaluation mutates only the
// concurrency-safe memo cache, so subqueries are safe iff the plans they
// contain are.

// ExprParallelSafe reports whether e (including any nested subquery
// plans) may be evaluated concurrently for different input rows.
func ExprParallelSafe(e Expr) bool {
	safe := true
	var checkExpr func(Expr)
	var checkNode func(Node)
	checkExpr = func(e Expr) {
		WalkExprs(e, func(x Expr) {
			switch x := x.(type) {
			case *Call:
				if sc, ok := fn.LookupScalar(x.Name); ok && sc.Volatile {
					safe = false
				}
			case *Subquery:
				checkNode(x.Plan)
			}
		})
	}
	checkNode = func(n Node) {
		visitNodeExprs(n, checkExpr)
		for _, c := range n.Children() {
			checkNode(c)
		}
	}
	checkExpr(e)
	return safe
}

// NodeParallelSafe reports whether the expressions held directly by n
// are parallel-safe; children are gated by their own operators.
func NodeParallelSafe(n Node) bool {
	safe := true
	visitNodeExprs(n, func(e Expr) {
		if !ExprParallelSafe(e) {
			safe = false
		}
	})
	return safe
}
