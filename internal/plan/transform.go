package plan

// TransformExpr returns a copy of e with f applied bottom-up to every
// node (children first, then the rebuilt parent). Subquery plans are not
// descended into — only the Subquery node itself and its IN-tuple
// expressions are visited.
func TransformExpr(e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Call:
		c := *x
		c.Args = transformList(x.Args, f)
		return f(&c)
	case *And:
		c := *x
		c.L = TransformExpr(x.L, f)
		c.R = TransformExpr(x.R, f)
		return f(&c)
	case *Or:
		c := *x
		c.L = TransformExpr(x.L, f)
		c.R = TransformExpr(x.R, f)
		return f(&c)
	case *Not:
		c := *x
		c.X = TransformExpr(x.X, f)
		return f(&c)
	case *IsNull:
		c := *x
		c.X = TransformExpr(x.X, f)
		return f(&c)
	case *IsDistinct:
		c := *x
		c.L = TransformExpr(x.L, f)
		c.R = TransformExpr(x.R, f)
		return f(&c)
	case *InList:
		c := *x
		c.X = TransformExpr(x.X, f)
		c.List = transformList(x.List, f)
		return f(&c)
	case *Case:
		c := *x
		c.Whens = make([]CaseWhen, len(x.Whens))
		for i, w := range x.Whens {
			c.Whens[i] = CaseWhen{Cond: TransformExpr(w.Cond, f), Then: TransformExpr(w.Then, f)}
		}
		c.Else = TransformExpr(x.Else, f)
		return f(&c)
	case *Cast:
		c := *x
		c.X = TransformExpr(x.X, f)
		return f(&c)
	case *Subquery:
		c := *x
		c.Exprs = transformList(x.Exprs, f)
		return f(&c)
	default:
		return f(e)
	}
}

func transformList(list []Expr, f func(Expr) Expr) []Expr {
	if list == nil {
		return nil
	}
	out := make([]Expr, len(list))
	for i, e := range list {
		out[i] = TransformExpr(e, f)
	}
	return out
}

// ShiftCorr raises every external reference in e by delta frames: ColRefs
// become CorrRef{delta} and existing CorrRefs gain delta levels. Used when
// an expression bound against a call-site row is moved inside a subquery
// (e.g. the value side of an evaluation-context term). e must not contain
// Subquery nodes (the binder rejects subqueries inside AT modifiers for
// this reason).
func ShiftCorr(e Expr, delta int) Expr {
	return TransformExpr(e, func(x Expr) Expr {
		switch x := x.(type) {
		case *ColRef:
			return &CorrRef{Levels: delta, Index: x.Index, Name: x.Name, Typ: x.Typ}
		case *CorrRef:
			return &CorrRef{Levels: x.Levels + delta, Index: x.Index, Name: x.Name, Typ: x.Typ}
		default:
			return x
		}
	})
}

// SubstituteCols replaces every ColRef in e using m; refs absent from m
// are returned unchanged. CorrRefs are left alone.
func SubstituteCols(e Expr, m func(*ColRef) (Expr, bool)) Expr {
	return TransformExpr(e, func(x Expr) Expr {
		if cr, ok := x.(*ColRef); ok {
			if repl, ok := m(cr); ok {
				return repl
			}
		}
		return x
	})
}

// ReplaceAggRefs rewrites AggRef nodes (e.g. into ColRefs over an
// Aggregate node's output row).
func ReplaceAggRefs(e Expr, f func(*AggRef) Expr) Expr {
	return TransformExpr(e, func(x Expr) Expr {
		if ar, ok := x.(*AggRef); ok {
			return f(ar)
		}
		return x
	})
}

// HasCorrRefs reports whether e contains correlated references (at any
// level), not descending into nested subquery plans.
func HasCorrRefs(e Expr) bool {
	found := false
	WalkExprs(e, func(x Expr) {
		if _, ok := x.(*CorrRef); ok {
			found = true
		}
		if sq, ok := x.(*Subquery); ok && PlanHasOuterRefs(sq.Plan, 0) {
			found = true
		}
	})
	return found
}

// PlanHasOuterRefs reports whether the plan refers to rows more than
// depth frames above it (depth 0 = the plan's own frame boundary).
func PlanHasOuterRefs(n Node, depth int) bool {
	found := false
	visitNodeExprs(n, func(e Expr) {
		WalkExprs(e, func(x Expr) {
			switch x := x.(type) {
			case *CorrRef:
				if x.Levels > depth {
					found = true
				}
			case *Subquery:
				if PlanHasOuterRefs(x.Plan, depth+1) {
					found = true
				}
			}
		})
	})
	if found {
		return true
	}
	for _, c := range n.Children() {
		if PlanHasOuterRefs(c, depth) {
			return true
		}
	}
	return false
}

// visitNodeExprs calls f for each expression held directly by node n
// (not its children).
func visitNodeExprs(n Node, f func(Expr)) {
	switch n := n.(type) {
	case *Filter:
		f(n.Pred)
	case *Project:
		for _, e := range n.Exprs {
			f(e.Expr)
		}
	case *Join:
		for _, e := range n.EquiLeft {
			f(e)
		}
		for _, e := range n.EquiRight {
			f(e)
		}
		if n.Residual != nil {
			f(n.Residual)
		}
	case *Aggregate:
		for _, e := range n.GroupExprs {
			f(e)
		}
		for _, a := range n.Aggs {
			for _, e := range a.Args {
				f(e)
			}
			for _, e := range a.WithinDistinct {
				f(e)
			}
			if a.Filter != nil {
				f(a.Filter)
			}
		}
	case *Sort:
		for _, s := range n.Items {
			f(s.Expr)
		}
	case *Limit:
		if n.Count != nil {
			f(n.Count)
		}
		if n.Offset != nil {
			f(n.Offset)
		}
	case *Window:
		for _, w := range n.Funcs {
			for _, e := range w.Args {
				f(e)
			}
			for _, e := range w.PartitionBy {
				f(e)
			}
			for _, s := range w.OrderBy {
				f(s.Expr)
			}
		}
	case *Values:
		for _, row := range n.Rows {
			for _, e := range row {
				f(e)
			}
		}
	}
}

// VisitNodeExprs exposes visitNodeExprs for other packages (executor,
// optimizer).
func VisitNodeExprs(n Node, f func(Expr)) { visitNodeExprs(n, f) }
