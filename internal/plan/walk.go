package plan

// Walk calls f for n and every node beneath it — through Children and
// through the plans of subqueries held by node expressions (measure
// expansions, IN/EXISTS, context links). Distributed-execution
// classification depends on this being exhaustive: a scan hidden
// inside a measure's expansion must be as visible as a top-level one.
func Walk(n Node, f func(Node)) {
	if n == nil {
		return
	}
	f(n)
	VisitNodeExprs(n, func(e Expr) {
		WalkExprs(e, func(x Expr) {
			if sq, ok := x.(*Subquery); ok {
				Walk(sq.Plan, f)
			}
		})
	})
	for _, c := range n.Children() {
		Walk(c, f)
	}
}
