package dist

// Query classification and the four execution paths. Every path is
// bit-identical to a single-node session running the same statements:
// routed queries read exactly one partition that provably contains
// every qualifying row; scattered aggregations merge only aggregates
// whose two-phase merge is exact, ordering per-group partials by the
// global insertion sequence so even first-seen-sensitive aggregates
// (ANY_VALUE) and group output order match the oracle; and the gather
// fallback rebuilds the tables in insertion order and runs the original
// statement unchanged.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/measures-sql/msql/internal/ast"
	"github.com/measures-sql/msql/internal/engine"
	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/fn"
	"github.com/measures-sql/msql/internal/parser"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
	"github.com/measures-sql/msql/internal/wire"
	"github.com/measures-sql/msql/msql"
	"github.com/measures-sql/msql/msql/client"
)

// Run executes sql (one or more statements) across the topology and
// returns one result per statement.
func (c *Coordinator) Run(ctx context.Context, sql string) ([]*msql.Result, error) {
	return c.RunWithRequestID(ctx, sql, c.newRequestID())
}

// RunWithRequestID is Run with an explicit correlation ID, which is
// propagated to every shard call as X-Request-Id.
func (c *Coordinator) RunWithRequestID(ctx context.Context, sql, reqID string) ([]*msql.Result, error) {
	stmts, err := parser.ParseStatements(sql)
	if err != nil {
		return nil, err
	}
	var out []*msql.Result
	for _, stmt := range stmts {
		var res *msql.Result
		if qs, ok := stmt.(*ast.QueryStmt); ok {
			res, err = c.queryText(ctx, ast.FormatQuery(qs.Query), reqID)
		} else {
			res, err = c.execStmt(ctx, stmt, reqID)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// Query executes sql and returns the last statement's result.
func (c *Coordinator) Query(ctx context.Context, sql string) (*msql.Result, error) {
	res, err := c.Run(ctx, sql)
	if err != nil {
		return nil, err
	}
	if len(res) == 0 {
		return &msql.Result{Message: "ok"}, nil
	}
	return res[len(res)-1], nil
}

// Exec executes sql, discarding results.
func (c *Coordinator) Exec(ctx context.Context, sql string) error {
	_, err := c.Run(ctx, sql)
	return err
}

// MustExec executes sql and panics on error (test/bootstrap helper).
func (c *Coordinator) MustExec(sql string) {
	if err := c.Exec(context.Background(), sql); err != nil {
		panic(err)
	}
}

// queryText executes one query, picking the cheapest safe path.
func (c *Coordinator) queryText(ctx context.Context, sql, reqID string) (*msql.Result, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.QueryTimeout)
	defer cancel()

	node, err := c.local.PlanQuery(ctx, sql)
	if err != nil {
		return nil, err
	}
	sharded := c.scanShardTables(node)
	if len(sharded) == 0 {
		return c.local.QueryContext(ctx, sql)
	}
	if q, err := parser.ParseQuery(sql); err == nil {
		if idx, ok := c.routeSingle(q); ok {
			return c.routed(ctx, idx, sql, reqID)
		}
	}
	if res, handled, err := c.scatter(ctx, sql, node, reqID); handled {
		return res, err
	}
	return c.gather(ctx, sql, sharded, reqID)
}

// scanShardTables collects the sharded tables the plan scans, looking
// through view expansions and subquery plans.
func (c *Coordinator) scanShardTables(node plan.Node) map[string]*tableMeta {
	out := map[string]*tableMeta{}
	c.mu.Lock()
	defer c.mu.Unlock()
	plan.Walk(node, func(n plan.Node) {
		if sc, ok := n.(*plan.Scan); ok {
			if meta, ok := c.tables[lower(sc.Source.Name())]; ok {
				out[lower(meta.name)] = meta
			}
		}
	})
	return out
}

// ---------------------------------------------------------------------------
// Routed execution (single-shard)

// routeSingle reports whether q can run whole on one shard: its FROM is
// a single sharded table and the WHERE pins that table's partition
// column to a literal, so every qualifying row — and every row any
// measure or AT context in the query can reach — lives on the owning
// shard.
func (c *Coordinator) routeSingle(q *ast.Query) (int, bool) {
	if len(q.With) != 0 {
		return 0, false
	}
	sel, ok := q.Body.(*ast.Select)
	if !ok || sel.From == nil {
		return 0, false
	}
	tn, ok := sel.From.(*ast.TableName)
	if !ok {
		return 0, false
	}
	meta, ok := c.meta(tn.Name)
	if !ok {
		return 0, false
	}
	pcol := meta.cols[meta.pcol]
	alias := tn.Alias
	if alias == "" {
		alias = tn.Name
	}
	// A shard-side SELECT * would expose the hidden sequence column.
	for _, it := range sel.Items {
		if it.Star {
			return 0, false
		}
	}
	var exprs []ast.Expr
	for _, it := range sel.Items {
		exprs = append(exprs, it.Expr)
	}
	exprs = append(exprs, sel.Where, sel.Having, sel.Qualify, q.Limit, q.Offset)
	for _, gi := range sel.GroupBy {
		exprs = append(exprs, gi.Exprs...)
		for _, set := range gi.Sets {
			exprs = append(exprs, set...)
		}
	}
	for _, oi := range q.OrderBy {
		exprs = append(exprs, oi.Expr)
	}
	for _, e := range exprs {
		if !routeSafeExpr(e, pcol) {
			return 0, false
		}
	}
	for _, conj := range conjuncts(sel.Where) {
		b, ok := conj.(*ast.Binary)
		if !ok || b.Op != "=" {
			continue
		}
		for _, pair := range [][2]ast.Expr{{b.L, b.R}, {b.R, b.L}} {
			id, ok := pair[0].(*ast.Ident)
			if !ok || !strings.EqualFold(id.Name(), pcol) {
				continue
			}
			if qual := id.Qualifier(); qual != "" && !strings.EqualFold(qual, alias) {
				continue
			}
			v, err := engine.EvalConstExpr(pair[1])
			if err != nil {
				continue
			}
			cv, err := coerceValue(v, meta.kinds[meta.pcol])
			if err != nil {
				continue
			}
			return c.shardFor(cv), true
		}
	}
	return 0, false
}

// conjuncts flattens a top-level AND chain.
func conjuncts(e ast.Expr) []ast.Expr {
	b, ok := e.(*ast.Binary)
	if ok && strings.EqualFold(b.Op, "AND") {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	if e == nil {
		return nil
	}
	return []ast.Expr{e}
}

// routeSafeExpr rejects expressions that could reach rows outside the
// pinned partition: subqueries, AT WHERE, AT ALL with no dimensions
// (full context reset), and AT modifiers that touch the partition
// column itself.
func routeSafeExpr(e ast.Expr, pcol string) bool {
	if e == nil {
		return true
	}
	safe := true
	ast.WalkExpr(e, func(x ast.Expr) bool {
		switch t := x.(type) {
		case *ast.ScalarSubquery, *ast.InSubquery, *ast.Exists:
			safe = false
		case *ast.At:
			for _, mod := range t.Mods {
				switch m := mod.(type) {
				case *ast.AtVisible:
				case *ast.AtWhere:
					safe = false
				case *ast.AtAll:
					if len(m.Dims) == 0 {
						safe = false
					}
					for _, d := range m.Dims {
						if mentionsCol(d, pcol) {
							safe = false
						}
					}
				case *ast.AtSet:
					if mentionsCol(m.Dim, pcol) {
						safe = false
					}
				default:
					safe = false
				}
			}
		}
		return safe
	})
	return safe
}

func mentionsCol(e ast.Expr, col string) bool {
	found := false
	ast.WalkExpr(e, func(x ast.Expr) bool {
		if id, ok := x.(*ast.Ident); ok && strings.EqualFold(id.Name(), col) {
			found = true
		}
		return !found
	})
	return found
}

// routed executes sql whole on shard idx.
func (c *Coordinator) routed(ctx context.Context, idx int, sql, reqID string) (*msql.Result, error) {
	sh := c.shards[idx]
	res, err := callShard(ctx, c, sh, "route", reqID, func(cctx context.Context, ep *endpoint) (*client.Result, error) {
		return c.shardQuery(cctx, sh, ep, sql, reqID)
	})
	if err != nil {
		return nil, c.shardFailure(ctx, map[int]error{idx: err})
	}
	return decodeClientResult(res)
}

// shardQuery runs a full query on one endpoint at its expected catalog
// version, syncing first and repairing once on a version mismatch.
func (c *Coordinator) shardQuery(ctx context.Context, sh *shard, ep *endpoint, sql, reqID string) (*client.Result, error) {
	if err := c.ensureSynced(ctx, sh, ep, reqID); err != nil {
		return nil, err
	}
	run := func() (*client.Result, error) {
		opts := []client.QueryOption{
			client.WithIdempotent(), client.WithRawNumbers(),
			client.WithRequestID(reqID), client.WithExpectCatalogVersion(ep.version()),
		}
		if d, ok := ctx.Deadline(); ok {
			opts = append(opts, client.WithTimeout(time.Until(d)))
		}
		return ep.cli.Query(ctx, sql, opts...)
	}
	res, err := run()
	if err != nil && strings.Contains(err.Error(), "catalog version mismatch") {
		if serr := c.rewindAndSync(ctx, sh, ep, reqID); serr == nil {
			res, err = run()
		}
	}
	return res, err
}

// shardFailure classifies a set of per-shard failures: a context
// cancellation/timeout keeps its own taxonomy code, anything else is
// the structured unavailability error.
func (c *Coordinator) shardFailure(ctx context.Context, failed map[int]error) error {
	if err := ctx.Err(); err != nil {
		return exec.CtxError(err)
	}
	c.metrics.shardErrors.Add(1)
	return unavailable(failed)
}

// ---------------------------------------------------------------------------
// Scatter execution (partial aggregation + exact merge)

// scatter attempts the scatter/partial path. handled=false means the
// query's shape is not scatter-safe and the caller should gather.
func (c *Coordinator) scatter(ctx context.Context, sql string, localPlan plan.Node, reqID string) (res *msql.Result, handled bool, err error) {
	q, perr := parser.ParseQuery(sql)
	if perr != nil {
		return nil, false, nil
	}
	sel, ok := q.Body.(*ast.Select)
	if !ok || sel.Distinct || sel.Having != nil || sel.Qualify != nil {
		return nil, false, nil
	}
	for _, it := range sel.Items {
		if it.Star {
			return nil, false, nil
		}
	}
	// Append the bookkeeping aggregate and strip the post-aggregation
	// clauses (they run on the coordinator after the merge). Appending
	// (not prepending) keeps GROUP BY ordinals valid.
	sel.Items = append(sel.Items, ast.SelectItem{
		Expr:  &ast.FuncCall{Name: "MIN", Args: []ast.Expr{&ast.Ident{Parts: []string{seqCol}}}},
		Alias: "__mseq_min",
	})
	q.OrderBy, q.Limit, q.Offset = nil, nil, nil
	shardSQL := ast.FormatQuery(q)

	// Validate the rewrite against the shard-schema mirror before any
	// shard sees it; any planning failure (hidden column not in scope,
	// ambiguity through a join) simply falls through to gather.
	shadowPlan, perr := c.shadow.PlanQuery(ctx, shardSQL)
	if perr != nil {
		return nil, false, nil
	}
	aggSh, ok := unwrapPartialAgg(shadowPlan)
	if !ok || !c.scatterPlanSafe(shadowPlan) {
		return nil, false, nil
	}
	if len(aggSh.Sets) > 1 || (len(aggSh.Sets) == 1 && len(aggSh.Sets[0]) != len(aggSh.GroupExprs)) {
		return nil, false, nil
	}
	aggCount := len(aggSh.Aggs) - 1
	groupCount := len(aggSh.GroupExprs)
	if aggCount < 0 || aggSh.Aggs[aggCount].Name != "MIN" {
		return nil, false, nil
	}
	for i := 0; i < aggCount; i++ {
		if !scatterSafeAgg(aggSh.Aggs[i]) {
			return nil, false, nil
		}
	}
	// Align the local plan: the merged groups replace its Aggregate
	// node, so the aggregates must correspond one to one.
	aggLoc, ok := unwrapLocalAgg(localPlan)
	if !ok || len(aggLoc.Aggs) != aggCount || len(aggLoc.GroupExprs) != groupCount {
		return nil, false, nil
	}
	for i := 0; i < aggCount; i++ {
		a, b := aggLoc.Aggs[i], aggSh.Aggs[i]
		if a.Name != b.Name || a.Star != b.Star || a.Distinct != b.Distinct || len(a.Args) != len(b.Args) {
			return nil, false, nil
		}
	}
	out, err := c.scatterRun(ctx, sql, shardSQL, localPlan, aggLoc, groupCount, aggCount, reqID)
	return out, true, err
}

// unwrapPartialAgg mirrors exec.PartialAggregate's accepted shape:
// Project* over a single Aggregate.
func unwrapPartialAgg(n plan.Node) (*plan.Aggregate, bool) {
	for {
		switch t := n.(type) {
		case *plan.Project:
			n = t.Input
		case *plan.Aggregate:
			return t, true
		default:
			return nil, false
		}
	}
}

// unwrapLocalAgg walks the local plan's root chain (Project/Sort/Limit
// — the operators that legally sit above a merged aggregate) down to
// its Aggregate.
func unwrapLocalAgg(n plan.Node) (*plan.Aggregate, bool) {
	for {
		switch t := n.(type) {
		case *plan.Project:
			n = t.Input
		case *plan.Sort:
			n = t.Input
		case *plan.Limit:
			n = t.Input
		case *plan.Aggregate:
			return t, true
		default:
			return nil, false
		}
	}
}

// scatterPlanSafe requires exactly one table scan (no joins — a
// per-shard join of per-shard slices is not the global join), every
// scan on a sharded table, and no subqueries or window functions
// anywhere (measure expansions that survive as correlated subqueries
// need rows beyond the shard's partition).
func (c *Coordinator) scatterPlanSafe(n plan.Node) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	safe := true
	scans := 0
	plan.Walk(n, func(m plan.Node) {
		switch t := m.(type) {
		case *plan.Scan:
			scans++
			if _, ok := c.tables[lower(t.Source.Name())]; !ok {
				safe = false
			}
		case *plan.Window, *plan.Join, *plan.SetOp, *plan.Distinct:
			safe = false
		}
		plan.VisitNodeExprs(m, func(e plan.Expr) {
			plan.WalkExprs(e, func(x plan.Expr) {
				if _, ok := x.(*plan.Subquery); ok {
					safe = false
				}
			})
		})
	})
	return safe && scans == 1
}

// scatterSafeAgg whitelists aggregates whose two-phase merge is exact
// under arbitrary row interleaving across shards: pure comparisons and
// integer arithmetic. Order-sensitive accumulators (float SUM/AVG/
// variance) and tie-broken selectors (ARG_MIN/ARG_MAX, whose merge
// keeps the receiver's candidate on equal keys regardless of global
// row order) fall through to the gather path.
func scatterSafeAgg(a plan.AggCall) bool {
	if a.Distinct || a.Filter != nil || len(a.WithinDistinct) > 0 {
		return false
	}
	def, ok := fn.LookupAgg(a.Name)
	if !ok {
		return false
	}
	argTypes := make([]sqltypes.Type, len(a.Args))
	for i, e := range a.Args {
		argTypes[i] = e.Type()
	}
	if !def.MergesExactly(argTypes) {
		return false
	}
	switch a.Name {
	case "COUNT", "MIN", "MAX", "ANY_VALUE":
		return true
	case "SUM":
		return len(argTypes) == 1 && argTypes[0].Kind == sqltypes.KindInt
	default:
		return false
	}
}

// partialPiece is one shard's contribution to one group.
type partialPiece struct {
	seq    int64 // the shard's MIN(__mseq) for the group
	states []fn.AggState
}

// scatterRun fans the rewritten query out, merges the partial states in
// global insertion order, and finishes the original plan locally with
// the merged groups substituted for its Aggregate node.
func (c *Coordinator) scatterRun(ctx context.Context, sql, shardSQL string, localPlan plan.Node, aggLoc *plan.Aggregate, groupCount, aggCount int, reqID string) (*msql.Result, error) {
	c.metrics.scatters.Add(int64(len(c.shards)))
	type shardOut struct {
		idx int
		p   *client.Partials
		err error
	}
	outs := make([]shardOut, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			p, err := callShard(ctx, c, sh, "partial", reqID, func(cctx context.Context, ep *endpoint) (*client.Partials, error) {
				return c.shardPartial(cctx, sh, ep, shardSQL, groupCount, aggCount+1, reqID)
			})
			outs[i] = shardOut{idx: i, p: p, err: err}
		}(i, sh)
	}
	wg.Wait()
	failed := map[int]error{}
	for _, o := range outs {
		if o.err != nil {
			failed[o.idx] = o.err
		}
	}
	if len(failed) > 0 {
		return nil, c.shardFailure(ctx, failed)
	}

	// Merge per group, ordering each group's pieces (and the groups
	// themselves) by the minimum global sequence they contain — the
	// order a single node would first have seen them.
	type groupAcc struct {
		key    string
		pieces []partialPiece
	}
	byKey := map[string]*groupAcc{}
	var order []*groupAcc
	for _, o := range outs {
		for _, g := range o.p.Groups {
			states, err := wire.DecodeStates(g.States)
			if err != nil {
				return nil, exec.Wrap(fmt.Errorf("shard %d partial state: %w", o.idx, err), exec.CodeRuntime, exec.PhaseExecute)
			}
			if len(states) != aggCount+1 {
				return nil, exec.Wrap(fmt.Errorf("shard %d returned %d states, want %d", o.idx, len(states), aggCount+1), exec.CodeRuntime, exec.PhaseExecute)
			}
			seqv := states[aggCount].Result()
			if seqv.Null || seqv.K != sqltypes.KindInt {
				return nil, exec.Wrap(fmt.Errorf("shard %d returned no sequence for a group", o.idx), exec.CodeRuntime, exec.PhaseExecute)
			}
			acc := byKey[g.Key]
			if acc == nil {
				acc = &groupAcc{key: g.Key}
				byKey[g.Key] = acc
				order = append(order, acc)
			}
			acc.pieces = append(acc.pieces, partialPiece{seq: seqv.I, states: states[:aggCount]})
		}
	}
	if len(order) == 0 {
		// No shard saw a qualifying row. The coordinator's empty local
		// mirror produces the exact empty-input answer, including the
		// one-row result of an ungrouped aggregate.
		return c.local.QueryContext(ctx, sql)
	}
	type mergedGroup struct {
		key    []sqltypes.Value
		vals   []sqltypes.Value
		minSeq int64
	}
	merged := make([]mergedGroup, 0, len(order))
	for _, acc := range order {
		sort.Slice(acc.pieces, func(i, j int) bool { return acc.pieces[i].seq < acc.pieces[j].seq })
		base := acc.pieces[0].states
		for _, p := range acc.pieces[1:] {
			for i := range base {
				if err := base[i].Merge(p.states[i]); err != nil {
					return nil, exec.Wrap(err, exec.CodeRuntime, exec.PhaseExecute)
				}
			}
		}
		key, err := wire.DecodeKey(acc.key)
		if err != nil {
			return nil, exec.Wrap(err, exec.CodeRuntime, exec.PhaseExecute)
		}
		if len(key) != groupCount {
			return nil, exec.Wrap(fmt.Errorf("group key has %d values, want %d", len(key), groupCount), exec.CodeRuntime, exec.PhaseExecute)
		}
		vals := make([]sqltypes.Value, len(base))
		for i, st := range base {
			vals[i] = st.Result()
		}
		merged = append(merged, mergedGroup{key: key, vals: vals, minSeq: acc.pieces[0].seq})
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].minSeq < merged[j].minSeq })

	rows := make([][]plan.Expr, len(merged))
	for i, g := range merged {
		row := make([]plan.Expr, 0, groupCount+aggCount)
		for _, v := range g.key {
			row = append(row, &plan.Lit{Val: v})
		}
		for _, v := range g.vals {
			row = append(row, &plan.Lit{Val: v})
		}
		rows[i] = row
	}
	values := &plan.Values{Rows: rows, Sch: aggLoc.Schema()}
	newRoot, ok := replaceAggregate(localPlan, aggLoc, values)
	if !ok {
		return nil, exec.Wrap(fmt.Errorf("internal: aggregate node not found for substitution"), exec.CodeRuntime, exec.PhaseExecute)
	}
	outRows, err := exec.RunContext(ctx, newRoot, exec.DefaultSettings())
	if err != nil {
		return nil, err
	}
	sch := newRoot.Schema()
	types := make([]sqltypes.Type, len(sch.Cols))
	for i, col := range sch.Cols {
		types[i] = col.Typ
	}
	return &msql.Result{Columns: sch.ColNames(), Types: types, Rows: outRows}, nil
}

// shardPartial runs the partial-aggregation call on one endpoint,
// syncing its log cursor first and repairing once on version mismatch.
func (c *Coordinator) shardPartial(ctx context.Context, sh *shard, ep *endpoint, shardSQL string, groups, aggs int, reqID string) (*client.Partials, error) {
	if err := c.ensureSynced(ctx, sh, ep, reqID); err != nil {
		return nil, err
	}
	run := func() (*client.Partials, error) {
		opts := []client.QueryOption{client.WithRequestID(reqID)}
		if d, ok := ctx.Deadline(); ok {
			opts = append(opts, client.WithTimeout(time.Until(d)))
		}
		return ep.cli.Partial(ctx, shardSQL, groups, aggs, ep.version(), opts...)
	}
	p, err := run()
	if vm := (*client.VersionMismatchError)(nil); errorsAs(err, &vm) {
		if serr := c.rewindAndSync(ctx, sh, ep, reqID); serr == nil {
			p, err = run()
		}
	}
	return p, err
}

// replaceAggregate rebuilds the root chain with repl in place of
// target, copying the pass-through nodes.
func replaceAggregate(n plan.Node, target *plan.Aggregate, repl plan.Node) (plan.Node, bool) {
	if n == plan.Node(target) {
		return repl, true
	}
	switch t := n.(type) {
	case *plan.Project:
		if in, ok := replaceAggregate(t.Input, target, repl); ok {
			cp := *t
			cp.Input = in
			return &cp, true
		}
	case *plan.Sort:
		if in, ok := replaceAggregate(t.Input, target, repl); ok {
			cp := *t
			cp.Input = in
			return &cp, true
		}
	case *plan.Limit:
		if in, ok := replaceAggregate(t.Input, target, repl); ok {
			cp := *t
			cp.Input = in
			return &cp, true
		}
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Gather execution (fallback)

// gather fetches every referenced sharded table's rows from every
// shard, rebuilds them in global insertion order in a scratch session,
// and runs the original query there. It is the always-correct fallback
// for any query shape.
func (c *Coordinator) gather(ctx context.Context, sql string, sharded map[string]*tableMeta, reqID string) (*msql.Result, error) {
	ddl := c.ddlSnapshot()

	type fetch struct {
		meta *tableMeta
		idx  int
		rows [][]sqltypes.Value
		err  error
	}
	var jobs []*fetch
	for _, meta := range sharded {
		for i := range c.shards {
			jobs = append(jobs, &fetch{meta: meta, idx: i})
		}
	}
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j *fetch) {
			defer wg.Done()
			sh := c.shards[j.idx]
			fetchSQL := ast.FormatQuery(&ast.Query{Body: &ast.Select{
				Items: []ast.SelectItem{{Star: true}},
				From:  &ast.TableName{Name: j.meta.name},
			}})
			res, err := callShard(ctx, c, sh, "gather", reqID, func(cctx context.Context, ep *endpoint) (*client.Result, error) {
				return c.shardQuery(cctx, sh, ep, fetchSQL, reqID)
			})
			if err != nil {
				j.err = err
				return
			}
			if len(res.Columns) == 0 || res.Columns[len(res.Columns)-1] != seqCol {
				j.err = fmt.Errorf("shard %d table %s: missing %s ordering column", j.idx, j.meta.name, seqCol)
				return
			}
			dec, err := decodeClientResult(res)
			if err != nil {
				j.err = err
				return
			}
			j.rows = dec.Rows
		}(j)
	}
	wg.Wait()
	failed := map[int]error{}
	for _, j := range jobs {
		if j.err != nil {
			failed[j.idx] = j.err
		}
	}
	if len(failed) > 0 {
		return nil, c.shardFailure(ctx, failed)
	}

	scratch := msql.Open()
	defer scratch.Close()
	for _, stmt := range ddl {
		if _, err := runOne(ctx, scratch, stmt); err != nil {
			return nil, exec.Wrap(fmt.Errorf("rebuilding schema: %w", err), exec.CodeRuntime, exec.PhaseExecute)
		}
	}
	byTable := map[string][][]sqltypes.Value{}
	for _, j := range jobs {
		key := lower(j.meta.name)
		byTable[key] = append(byTable[key], j.rows...)
	}
	for _, meta := range sharded {
		rows := byTable[lower(meta.name)]
		// Global insertion order: the hidden sequence travels as the
		// last column.
		sort.SliceStable(rows, func(i, j int) bool {
			return rows[i][len(rows[i])-1].I < rows[j][len(rows[j])-1].I
		})
		stripped := make([][]sqltypes.Value, len(rows))
		for i, r := range rows {
			stripped[i] = r[:len(r)-1]
		}
		if err := scratch.InsertRows(meta.name, stripped); err != nil {
			return nil, err
		}
	}
	return scratch.QueryContext(ctx, sql)
}

// ---------------------------------------------------------------------------
// Wire decoding

// decodeClientResult converts a wire result (decoded with UseNumber)
// back to typed values, preserving 64-bit integers exactly.
func decodeClientResult(res *client.Result) (*msql.Result, error) {
	types := make([]sqltypes.Type, len(res.Types))
	for i, name := range res.Types {
		t, err := parseTypeName(name)
		if err != nil {
			return nil, err
		}
		types[i] = t
	}
	rows := make([][]sqltypes.Value, len(res.Rows))
	for r, in := range res.Rows {
		if len(in) != len(types) {
			return nil, fmt.Errorf("row %d has %d values, want %d", r, len(in), len(types))
		}
		row := make([]sqltypes.Value, len(in))
		for i, v := range in {
			sv, err := decodeWireValue(v, types[i].Kind)
			if err != nil {
				return nil, fmt.Errorf("row %d column %s: %w", r, res.Columns[i], err)
			}
			row[i] = sv
		}
		rows[r] = row
	}
	return &msql.Result{Columns: res.Columns, Types: types, Rows: rows, Message: res.Message}, nil
}

func parseTypeName(name string) (sqltypes.Type, error) {
	base, measure := strings.CutSuffix(name, " MEASURE")
	k := sqltypes.KindFromName(base)
	if k == sqltypes.KindUnknown && !strings.EqualFold(base, "UNKNOWN") {
		return sqltypes.Type{}, fmt.Errorf("unknown wire type %q", name)
	}
	return sqltypes.Type{Kind: k, Measure: measure}, nil
}

func decodeWireValue(v any, kind sqltypes.Kind) (sqltypes.Value, error) {
	if v == nil {
		return sqltypes.Null(kind), nil
	}
	switch x := v.(type) {
	case bool:
		return sqltypes.NewBool(x), nil
	case json.Number:
		switch kind {
		case sqltypes.KindFloat:
			f, err := x.Float64()
			if err != nil {
				return sqltypes.Value{}, err
			}
			return sqltypes.NewFloat(f), nil
		default:
			if i, err := x.Int64(); err == nil {
				return sqltypes.NewInt(i), nil
			}
			f, err := x.Float64()
			if err != nil {
				return sqltypes.Value{}, err
			}
			return sqltypes.NewFloat(f), nil
		}
	case string:
		if kind == sqltypes.KindDate {
			return sqltypes.ParseDate(x)
		}
		return sqltypes.NewString(x), nil
	case float64:
		// Only reachable without UseNumber; kept for safety.
		if kind == sqltypes.KindInt && f64IsInt(x) {
			return sqltypes.NewInt(int64(x)), nil
		}
		return sqltypes.NewFloat(x), nil
	default:
		return sqltypes.Value{}, fmt.Errorf("unsupported wire value %T", v)
	}
}

func f64IsInt(f float64) bool { return f == float64(int64(f)) }

// errorsAs is a typed wrapper over errors.As.
func errorsAs[T error](err error, target *T) bool {
	if err == nil {
		return false
	}
	return errors.As(err, target)
}
