package dist

import (
	"sync/atomic"

	"github.com/measures-sql/msql/internal/sqltypes"
	"github.com/measures-sql/msql/msql"
)

// counters is the coordinator's failure-envelope instrumentation; it
// feeds msql.Metrics() (and therefore the Prometheus exposition) via
// RegisterShardMetrics on the local session.
type counters struct {
	scatters     atomic.Int64
	retries      atomic.Int64
	hedges       atomic.Int64
	failovers    atomic.Int64
	breakerOpens atomic.Int64
	shardErrors  atomic.Int64
}

// shardCounters snapshots the counters plus the live topology state.
func (c *Coordinator) shardCounters() msql.ShardCounters {
	var open int64
	for _, sh := range c.shards {
		for _, ep := range sh.endpoints {
			if st, _, _ := ep.br.snapshot(); st == breakerOpen {
				open++
			}
		}
	}
	return msql.ShardCounters{
		Scatters:     c.metrics.scatters.Load(),
		Retries:      c.metrics.retries.Load(),
		Hedges:       c.metrics.hedges.Load(),
		Failovers:    c.metrics.failovers.Load(),
		BreakerOpens: c.metrics.breakerOpens.Load(),
		ShardErrors:  c.metrics.shardErrors.Load(),
		ShardsTotal:  int64(len(c.shards)),
		BreakersOpen: open,
	}
}

// registerShardsTable publishes per-endpoint health as the
// msql_stats.shards virtual table on the coordinator's local session:
// one row per endpoint with its role, breaker state, consecutive
// failures, replication lag, hedge count, and last error.
func (c *Coordinator) registerShardsTable() error {
	intT := sqltypes.Type{Kind: sqltypes.KindInt}
	strT := sqltypes.Type{Kind: sqltypes.KindString}
	cols := []string{"shard", "endpoint", "role", "breaker", "consecutive_failures", "applied", "pending", "hedges", "last_error"}
	types := []msql.Type{intT, strT, strT, strT, intT, intT, intT, intT, strT}
	return c.local.RegisterVirtualTable("msql_stats.shards", cols, types, func() [][]msql.Value {
		var rows [][]msql.Value
		for _, sh := range c.shards {
			n := sh.logLen()
			for i, ep := range sh.endpoints {
				role := "primary"
				if i > 0 {
					role = "replica"
				}
				st, fails, lastErr := ep.br.snapshot()
				applied := int(ep.version())
				pending := n - applied
				if pending < 0 {
					pending = 0
				}
				rows = append(rows, []msql.Value{
					sqltypes.NewInt(int64(sh.idx)),
					sqltypes.NewString(ep.url),
					sqltypes.NewString(role),
					sqltypes.NewString(st.String()),
					sqltypes.NewInt(int64(fails)),
					sqltypes.NewInt(int64(applied)),
					sqltypes.NewInt(int64(pending)),
					sqltypes.NewInt(ep.hedges.Load()),
					sqltypes.NewString(lastErr),
				})
			}
		}
		return rows
	})
}
