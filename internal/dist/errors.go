package dist

import (
	"fmt"
	"sort"

	"github.com/measures-sql/msql/internal/exec"
)

// ShardUnavailableError reports that a distributed statement lost every
// endpoint of at least one shard it needed, after retries, failover,
// and hedging. The error names the shards lost so an operator can see
// exactly which partitions are dark; a query that returns it produced
// no result at all — never a silently partial one.
type ShardUnavailableError struct {
	// Shards are the indexes of the shards with no usable endpoint.
	Shards []int
	// Err is the last underlying failure observed.
	Err error
}

// Error implements error.
func (e *ShardUnavailableError) Error() string {
	return fmt.Sprintf("shard(s) %v unavailable after retries, failover, and hedging: %v", e.Shards, e.Err)
}

// Unwrap exposes the last underlying failure.
func (e *ShardUnavailableError) Unwrap() error { return e.Err }

// unavailable builds the structured taxonomy error for lost shards:
// errors.Is(err, msql.ErrUnavailable) matches, errors.As reaches the
// *ShardUnavailableError naming them.
func unavailable(shards map[int]error) error {
	idxs := make([]int, 0, len(shards))
	var last error
	for i, err := range shards {
		idxs = append(idxs, i)
		last = err
	}
	sort.Ints(idxs)
	return &exec.Error{
		Code:  exec.CodeUnavailable,
		Phase: exec.PhaseExecute,
		Pos:   -1,
		Hint:  "restart or reconnect the lost shard endpoints; the coordinator replays missed mutations on rejoin",
		Err:   &ShardUnavailableError{Shards: idxs, Err: last},
	}
}
