package dist

// The coordinator's HTTP surface speaks the same wire protocol as a
// single msqld node, so msql/client (and msqlbench) work against a
// coordinator unchanged:
//
//	POST /query         JSON in, one JSON object out
//	GET  /healthz       liveness
//	GET  /readyz        readiness — 200 once every shard has been reached
//	GET  /metrics       Prometheus text (local engine + shard counters)
//	GET  /metrics.json  the same snapshot as JSON
//
// A request's X-Request-Id (or body request_id) is propagated to every
// shard call the query fans out into, so one distributed query is one
// correlation ID across the whole topology.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/measures-sql/msql/internal/wire"
)

const maxRequestBytes = 1 << 20

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", c.serveQuery)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if err := c.Ready(r.Context()); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "not ready: %v\n", err)
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ready\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		io.WriteString(w, c.local.Metrics().Prometheus())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, c.local.Metrics().JSON())
	})
	return mux
}

// Ready probes every shard's health: ready means each shard has at
// least one endpoint answering /catalog.
func (c *Coordinator) Ready(ctx context.Context) error {
	for _, sh := range c.shards {
		ok := false
		var last error
		for _, ep := range sh.endpoints {
			if _, err := ep.cli.Catalog(ctx); err == nil {
				ok = true
				break
			} else {
				last = err
			}
		}
		if !ok {
			return fmt.Errorf("shard %d unreachable: %w", sh.idx, last)
		}
	}
	return nil
}

func (c *Coordinator) serveQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req wire.QueryRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes))
	if err == nil {
		err = json.Unmarshal(body, &req)
	}
	if err != nil || req.SQL == "" {
		if err == nil {
			err = errors.New("request carries no sql")
		}
		writeWireError(w, &wire.Error{
			Code:    "PARSE",
			Phase:   "request",
			Offset:  -1,
			Hint:    `POST a JSON body like {"sql": "SELECT ..."}`,
			Message: fmt.Sprintf("bad request: %v", err),
		}, http.StatusBadRequest)
		return
	}

	reqID := r.Header.Get("X-Request-Id")
	if reqID == "" {
		reqID = req.RequestID
	}
	if reqID == "" {
		reqID = c.newRequestID()
	}
	w.Header().Set("X-Request-Id", reqID)

	ctx := r.Context()
	if req.TimeoutMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMillis)*time.Millisecond)
		defer cancel()
	}

	results, err := c.RunWithRequestID(ctx, req.SQL, reqID)
	if err != nil {
		we := wire.FromError(err)
		we.RequestID = reqID
		writeWireError(w, we, we.HTTPStatus())
		return
	}
	resp := wire.QueryResponse{}
	if len(results) > 0 {
		last := results[len(results)-1]
		if last.Rows != nil || len(last.Columns) > 0 {
			resp.Columns = last.Columns
			resp.Types = make([]string, len(last.Types))
			for i, t := range last.Types {
				resp.Types[i] = t.String()
			}
			resp.Rows = wire.EncodeRows(last.Rows)
		} else {
			resp.Message = last.Message
		}
	} else {
		resp.Message = "ok"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func writeWireError(w http.ResponseWriter, we *wire.Error, status int) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(wire.QueryResponse{Error: we})
}
