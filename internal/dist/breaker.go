package dist

import (
	"sync"
	"time"
)

// breakerState enumerates the circuit-breaker states.
type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-endpoint circuit breaker. Closed passes traffic and
// counts consecutive failures; at threshold it opens and sheds calls
// without touching the endpoint. After the cooldown the next Allow
// admits exactly one probe (half-open): success closes the breaker,
// failure re-opens it for another cooldown.
type breaker struct {
	mu        sync.Mutex
	state     breakerState
	fails     int // consecutive failures while closed
	openedAt  time.Time
	probing   bool      // a half-open probe is in flight
	probeAt   time.Time // when the in-flight probe was admitted
	lastErr   string
	threshold int
	cooldown  time.Duration

	// onOpen is called (outside the lock) on each closed/half-open →
	// open transition, so the coordinator can count breaker opens.
	onOpen func()
}

// Allow reports whether a call may proceed right now. In the half-open
// window only one probe is admitted at a time.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		b.probeAt = time.Now()
		return true
	default: // half-open
		// A probe that was admitted but never reported back (its caller
		// found a winner elsewhere and returned early) must not wedge
		// the breaker: let it expire after a cooldown.
		if b.probing && time.Since(b.probeAt) < b.cooldown {
			return false
		}
		b.probing = true
		b.probeAt = time.Now()
		return true
	}
}

// Success records a successful call, closing the breaker.
func (b *breaker) Success() {
	b.mu.Lock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
	b.lastErr = ""
	b.mu.Unlock()
}

// Failure records a failed call: a half-open probe re-opens the
// breaker, the threshold-th consecutive closed failure opens it.
func (b *breaker) Failure(err error) {
	var opened bool
	b.mu.Lock()
	if err != nil {
		b.lastErr = err.Error()
	}
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = time.Now()
		b.probing = false
		opened = true
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = time.Now()
			opened = true
		}
	}
	b.mu.Unlock()
	if opened && b.onOpen != nil {
		b.onOpen()
	}
}

// snapshot returns the state, consecutive-failure count, and last error
// for introspection.
func (b *breaker) snapshot() (breakerState, int, string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.fails, b.lastErr
}
