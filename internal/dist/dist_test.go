package dist_test

// In-process cluster tests: every shard is a real server.Server over a
// real msql.DB behind an httptest listener, and every result the
// coordinator returns is compared bit-for-bit against a single-node
// oracle session running the same statements.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/measures-sql/msql/internal/dist"
	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/paperdata"
	"github.com/measures-sql/msql/internal/server"
	"github.com/measures-sql/msql/msql"
	"github.com/measures-sql/msql/msql/client"
)

// shardNode is one restartable shard process stand-in: a server over a
// fresh DB on a fixed address, so a "restart" comes back empty (catalog
// version 0) on the same URL, exactly like a crashed msqld without
// durable storage.
type shardNode struct {
	t    *testing.T
	id   string
	addr string

	mu   sync.Mutex
	srv  *httptest.Server
	db   *msql.DB
	down bool
}

func startShardNode(t *testing.T, id string) *shardNode {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n := &shardNode{t: t, id: id, addr: l.Addr().String()}
	n.startOn(l)
	t.Cleanup(n.Stop)
	return n
}

func (n *shardNode) startOn(l net.Listener) {
	db := msql.Open()
	srv := httptest.NewUnstartedServer(server.New(db, server.Config{ShardID: n.id}).Handler())
	srv.Listener.Close()
	srv.Listener = l
	srv.Start()
	n.mu.Lock()
	n.srv, n.db, n.down = srv, db, false
	n.mu.Unlock()
}

func (n *shardNode) URL() string { return "http://" + n.addr }

// Stop kills the node (connections reset, state lost).
func (n *shardNode) Stop() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return
	}
	n.down = true
	n.srv.CloseClientConnections()
	n.srv.Close()
	n.db.Close()
}

// Restart brings the node back empty on the same address.
func (n *shardNode) Restart() {
	n.Stop()
	var l net.Listener
	var err error
	for i := 0; i < 50; i++ {
		l, err = net.Listen("tcp", n.addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		n.t.Fatalf("rebind %s: %v", n.addr, err)
	}
	n.startOn(l)
}

func testConfig(shards [][]string) dist.Config {
	return dist.Config{
		Shards:           shards,
		QueryTimeout:     10 * time.Second,
		Backoff:          client.Backoff{Attempts: 2, Base: time.Millisecond, Max: 5 * time.Millisecond, Seed: 7},
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
		HedgeDelay:       25 * time.Millisecond,
	}
}

// cluster spins nShards single-endpoint shards plus a coordinator and a
// single-node oracle.
func cluster(t *testing.T, nShards int) (*dist.Coordinator, *msql.DB, []*shardNode) {
	t.Helper()
	var nodes []*shardNode
	var shards [][]string
	for i := 0; i < nShards; i++ {
		n := startShardNode(t, fmt.Sprintf("shard-%d", i))
		nodes = append(nodes, n)
		shards = append(shards, []string{n.URL()})
	}
	coord, err := dist.New(testConfig(shards))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	oracle := msql.Open()
	t.Cleanup(func() { oracle.Close() })
	return coord, oracle, nodes
}

// execBoth applies the same statements to coordinator and oracle.
func execBoth(t *testing.T, c *dist.Coordinator, oracle *msql.DB, sql string) {
	t.Helper()
	if err := c.Exec(context.Background(), sql); err != nil {
		t.Fatalf("coordinator exec %q: %v", firstLine(sql), err)
	}
	oracle.MustExec(sql)
}

// queryBoth runs sql on both and requires bit-identical results.
func queryBoth(t *testing.T, c *dist.Coordinator, oracle *msql.DB, sql string) *msql.Result {
	t.Helper()
	got, err := c.Query(context.Background(), sql)
	if err != nil {
		t.Fatalf("coordinator query %q: %v", sql, err)
	}
	want, err := oracle.QueryContext(context.Background(), sql)
	if err != nil {
		t.Fatalf("oracle query %q: %v", sql, err)
	}
	sameResult(t, sql, got, want)
	return got
}

func sameResult(t *testing.T, sql string, got, want *msql.Result) {
	t.Helper()
	if fmt.Sprint(got.Columns) != fmt.Sprint(want.Columns) {
		t.Fatalf("%s:\ncolumns %v\nwant    %v", sql, got.Columns, want.Columns)
	}
	gt := make([]string, len(got.Types))
	for i, ty := range got.Types {
		gt[i] = ty.String()
	}
	wt := make([]string, len(want.Types))
	for i, ty := range want.Types {
		wt[i] = ty.String()
	}
	if fmt.Sprint(gt) != fmt.Sprint(wt) {
		t.Fatalf("%s:\ntypes %v\nwant  %v", sql, gt, wt)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s:\n%d rows\nwant %d rows\ngot:  %v\nwant: %v", sql, len(got.Rows), len(want.Rows), fmtRows(got), fmtRows(want))
	}
	for i := range got.Rows {
		if fmt.Sprint(got.Rows[i]) != fmt.Sprint(want.Rows[i]) {
			t.Fatalf("%s:\nrow %d = %v\nwant    %v", sql, i, got.Rows[i], want.Rows[i])
		}
	}
}

func fmtRows(r *msql.Result) string {
	var b strings.Builder
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%v; ", row)
	}
	return b.String()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + "..."
	}
	return s
}

// differentialQueries covers all four execution paths over the paper's
// dataset.
var differentialQueries = []string{
	// local (no sharded table)
	`SELECT 1 + 2 AS three`,
	// routed (partition column pinned; prodName is Orders' first column)
	`SELECT custName, revenue FROM Orders WHERE prodName = 'Happy'`,
	`SELECT COUNT(*) AS n, SUM(revenue) AS rev FROM Orders WHERE prodName = 'Happy' AND cost > 1`,
	// scatter (exactly mergeable aggregates)
	`SELECT prodName, COUNT(*) AS n, SUM(revenue) AS rev, MIN(cost) AS lo, MAX(cost) AS hi FROM Orders GROUP BY prodName`,
	`SELECT prodName, SUM(revenue) AS rev FROM Orders GROUP BY prodName ORDER BY rev DESC, prodName`,
	`SELECT custName, COUNT(*) AS n FROM Orders WHERE revenue > 3 GROUP BY custName ORDER BY n DESC, custName LIMIT 2`,
	`SELECT COUNT(*) AS n, MIN(orderDate) AS earliest, MAX(orderDate) AS latest FROM Orders`,
	`SELECT COUNT(*) AS n FROM Orders WHERE revenue > 100`,
	`SELECT prodName, SUM(revenue) - SUM(cost) AS profit FROM Orders GROUP BY prodName ORDER BY prodName`,
	// gather (AVG merge is not exact; joins; measures; DISTINCT)
	`SELECT prodName, AVG(revenue) AS avgRev FROM Orders GROUP BY prodName ORDER BY prodName`,
	`SELECT DISTINCT prodName FROM Orders ORDER BY prodName`,
	`SELECT o.prodName, c.custAge FROM Orders o JOIN Customers c ON o.custName = c.custName ORDER BY o.prodName, c.custAge`,
	`SELECT prodName, AGGREGATE(profitMargin) AS profitMargin FROM EnhancedOrders GROUP BY prodName`,
	`SELECT orderDate, AGGREGATE(profitMargin) AS m FROM EnhancedOrders WHERE prodName = 'Happy' GROUP BY orderDate ORDER BY orderDate`,
	`SELECT custName, AGGREGATE(sumRevenue) AS rev FROM OrdersWithRevenue GROUP BY custName ORDER BY custName`,
	`SELECT prodName, profitMargin FROM SummarizedOrders ORDER BY prodName, profitMargin`,
	`SELECT * FROM Orders ORDER BY revenue, prodName`,
}

func TestDifferentialAgainstSingleNode(t *testing.T) {
	for _, nShards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", nShards), func(t *testing.T) {
			coord, oracle, _ := cluster(t, nShards)
			execBoth(t, coord, oracle, paperdata.All)
			for _, q := range differentialQueries {
				queryBoth(t, coord, oracle, q)
			}
			// Mutate after the fact and re-verify: the replay log and the
			// global sequence keep tracking.
			execBoth(t, coord, oracle, `INSERT INTO Orders VALUES ('Acme', 'Celia', DATE '2024-01-02', 9, 3)`)
			for _, q := range differentialQueries {
				queryBoth(t, coord, oracle, q)
			}
		})
	}
}

func TestInsertSpreadsAcrossShards(t *testing.T) {
	coord, oracle, nodes := cluster(t, 4)
	execBoth(t, coord, oracle, `CREATE TABLE kv (k INTEGER, v VARCHAR)`)
	var ins strings.Builder
	ins.WriteString(`INSERT INTO kv VALUES `)
	for i := 0; i < 64; i++ {
		if i > 0 {
			ins.WriteString(", ")
		}
		fmt.Fprintf(&ins, "(%d, 'v%d')", i, i)
	}
	execBoth(t, coord, oracle, ins.String())

	total := 0
	for _, n := range nodes {
		cli := client.New(n.URL())
		res, err := cli.Query(context.Background(), `SELECT COUNT(*) FROM kv`)
		if err != nil {
			t.Fatal(err)
		}
		cnt := int(asInt64(t, res.Rows[0][0]))
		if cnt == 0 {
			t.Fatalf("shard %s received no rows — hash partitioning is degenerate", n.id)
		}
		total += cnt
	}
	if total != 64 {
		t.Fatalf("shards hold %d rows in total, want 64", total)
	}
	queryBoth(t, coord, oracle, `SELECT COUNT(*) AS n, SUM(k) AS s FROM kv`)
	queryBoth(t, coord, oracle, `SELECT v FROM kv WHERE k = 17`)
}

func asInt64(t *testing.T, v any) int64 {
	t.Helper()
	switch x := v.(type) {
	case float64:
		return int64(x)
	case int64:
		return x
	default:
		t.Fatalf("unexpected count type %T", v)
		return 0
	}
}

func TestPartitionColumnOverride(t *testing.T) {
	n0 := startShardNode(t, "s0")
	n1 := startShardNode(t, "s1")
	cfg := testConfig([][]string{{n0.URL()}, {n1.URL()}})
	cfg.PartitionCols = map[string]string{"orders": "custName"}
	coord, err := dist.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	oracle := msql.Open()
	defer oracle.Close()
	execBoth(t, coord, oracle, paperdata.Schema)
	// Pinning prodName no longer routes (it is not the partition column)
	// but stays correct; pinning custName routes.
	queryBoth(t, coord, oracle, `SELECT custName, revenue FROM Orders WHERE prodName = 'Happy'`)
	queryBoth(t, coord, oracle, `SELECT prodName, revenue FROM Orders WHERE custName = 'Alice'`)
	queryBoth(t, coord, oracle, `SELECT custName, SUM(revenue) AS rev FROM Orders GROUP BY custName ORDER BY custName`)
}

func TestStructuredUnavailableError(t *testing.T) {
	coord, oracle, nodes := cluster(t, 2)
	execBoth(t, coord, oracle, paperdata.Schema)
	nodes[1].Stop()

	_, err := coord.Query(context.Background(), `SELECT prodName, COUNT(*) FROM Orders GROUP BY prodName`)
	if err == nil {
		t.Fatal("query over a dead shard returned a result")
	}
	if !errors.Is(err, msql.ErrUnavailable) {
		t.Fatalf("error is not ErrUnavailable: %v", err)
	}
	var su *dist.ShardUnavailableError
	if !errors.As(err, &su) {
		t.Fatalf("error carries no *ShardUnavailableError: %v", err)
	}
	if len(su.Shards) != 1 || su.Shards[0] != 1 {
		t.Fatalf("lost shards = %v, want [1]", su.Shards)
	}

	// Queries that avoid the dead shard still answer: local...
	if _, err := coord.Query(context.Background(), `SELECT 41 + 1`); err != nil {
		t.Fatalf("local query: %v", err)
	}
	// ...and the virtual health table reports the breaker's state.
	res, err := coord.Query(context.Background(),
		`SELECT breaker FROM msql_stats.shards WHERE shard = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("shards vtable rows = %d, want 1", len(res.Rows))
	}
}

func TestBreakerOpensThenRejoins(t *testing.T) {
	coord, oracle, nodes := cluster(t, 2)
	execBoth(t, coord, oracle, paperdata.Schema)
	queryBoth(t, coord, oracle, `SELECT prodName, SUM(revenue) AS r FROM Orders GROUP BY prodName ORDER BY prodName`)

	nodes[1].Stop()
	// Hammer until the breaker opens (threshold 2).
	for i := 0; i < 4; i++ {
		coord.Query(context.Background(), `SELECT COUNT(*) FROM Orders`)
	}
	res, err := coord.Query(context.Background(),
		`SELECT breaker FROM msql_stats.shards WHERE shard = 1`)
	if err != nil {
		t.Fatal(err)
	}
	state := fmt.Sprint(res.Rows[0][0])
	if !strings.Contains(state, "open") {
		t.Fatalf("breaker state after repeated failures = %q, want open", state)
	}

	// Restart empty: the coordinator must notice version 0 < cursor,
	// replay the log, and answer exactly again — transparently, after
	// the cooldown admits a probe.
	nodes[1].Restart()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = coord.Query(context.Background(), `SELECT COUNT(*) FROM Orders`)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard never rejoined: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, q := range []string{
		`SELECT prodName, SUM(revenue) AS r FROM Orders GROUP BY prodName ORDER BY prodName`,
		`SELECT * FROM Orders ORDER BY revenue, prodName`,
	} {
		queryBoth(t, coord, oracle, q)
	}
	if !strings.Contains(coord.Local().Metrics().Prometheus(), "msql_shard_breaker_open_total") {
		t.Fatal("breaker-open counter missing from Prometheus exposition")
	}
}

func TestReplicaFailover(t *testing.T) {
	primary := startShardNode(t, "s0-a")
	replica := startShardNode(t, "s0-b")
	coord, err := dist.New(testConfig([][]string{{primary.URL(), replica.URL()}}))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	oracle := msql.Open()
	defer oracle.Close()
	execBoth(t, coord, oracle, paperdata.Schema)

	primary.Stop()
	for _, q := range []string{
		`SELECT prodName, SUM(revenue) AS r FROM Orders GROUP BY prodName ORDER BY prodName`,
		`SELECT custName FROM Orders WHERE prodName = 'Whizz'`,
		`SELECT * FROM Orders ORDER BY revenue`,
	} {
		queryBoth(t, coord, oracle, q)
	}
	// Mutations keep working against the replica and replay to the
	// primary when it returns.
	execBoth(t, coord, oracle, `INSERT INTO Orders VALUES ('Whizz', 'Bob', DATE '2024-05-05', 8, 2)`)
	queryBoth(t, coord, oracle, `SELECT COUNT(*) AS n FROM Orders`)

	primary.Restart()
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := coord.Query(context.Background(),
			`SELECT pending FROM msql_stats.shards WHERE role = 'primary'`)
		if err == nil && len(res.Rows) == 1 && fmt.Sprint(res.Rows[0][0]) == "0" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted primary never caught up")
		}
		// Any query syncs lagging endpoints as a side effect.
		coord.Query(context.Background(), `SELECT COUNT(*) FROM Orders`)
		time.Sleep(20 * time.Millisecond)
	}
	prom := coord.Local().Metrics().Prometheus()
	if !strings.Contains(prom, "msql_shard_failovers_total") {
		t.Fatal("failover counter missing from Prometheus exposition")
	}
}

func TestHedgingToReplica(t *testing.T) {
	// A primary that answers reads slowly (but correctly) should lose
	// the hedge race to the replica without any error surfacing.
	slowDB := msql.Open()
	defer slowDB.Close()
	slowInner := server.New(slowDB, server.Config{ShardID: "slow"}).Handler()
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/query" || r.URL.Path == "/partial" {
			time.Sleep(300 * time.Millisecond)
		}
		slowInner.ServeHTTP(w, r)
	}))
	defer slow.Close()
	fast := startShardNode(t, "fast")

	cfg := testConfig([][]string{{slow.URL, fast.URL()}})
	cfg.HedgeDelay = 10 * time.Millisecond
	coord, err := dist.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	oracle := msql.Open()
	defer oracle.Close()
	execBoth(t, coord, oracle, paperdata.Schema)

	start := time.Now()
	queryBoth(t, coord, oracle, `SELECT prodName, SUM(revenue) AS r FROM Orders GROUP BY prodName ORDER BY prodName`)
	if d := time.Since(start); d > 250*time.Millisecond {
		t.Fatalf("hedged query took %v — the slow primary held the tail hostage", d)
	}
	res, err := coord.Query(context.Background(), `SELECT SUM(hedges) FROM msql_stats.shards`)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Rows[0][0]) == "0" {
		t.Fatal("no hedged request was recorded")
	}
}

func TestRequestIDPropagation(t *testing.T) {
	coord, oracle, _ := cluster(t, 2)
	execBoth(t, coord, oracle, paperdata.Schema)

	var mu sync.Mutex
	ids := map[string]bool{}
	coord.SetTrace(traceFunc(func(s exec.Span) {
		if s.Phase == "shard" {
			mu.Lock()
			ids[s.Attrs["request_id"]] = true
			mu.Unlock()
		}
	}))
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	body := strings.NewReader(`{"sql": "SELECT prodName, COUNT(*) AS n FROM Orders GROUP BY prodName"}`)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/query", body)
	req.Header.Set("X-Request-Id", "req-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "req-abc-123" {
		t.Fatalf("response X-Request-Id = %q, want req-abc-123", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if !ids["req-abc-123"] {
		t.Fatalf("no shard span carried the request ID; saw %v", ids)
	}
}

type traceFunc func(exec.Span)

func (f traceFunc) Span(s exec.Span) { f(s) }

func TestCoordinatorHTTPSurface(t *testing.T) {
	coord, oracle, _ := cluster(t, 2)
	execBoth(t, coord, oracle, paperdata.All)
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	// The stock client speaks to a coordinator exactly as to a node.
	cli := client.New(ts.URL)
	res, err := cli.Query(context.Background(),
		`SELECT prodName, AGGREGATE(profitMargin) AS profitMargin FROM EnhancedOrders GROUP BY prodName`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("listing 3 over HTTP returned %d rows, want 3", len(res.Rows))
	}
	for _, path := range []string{"/healthz", "/readyz", "/metrics", "/metrics.json"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}

func TestReservedColumnRejected(t *testing.T) {
	coord, _, _ := cluster(t, 2)
	err := coord.Exec(context.Background(), `CREATE TABLE bad (__mseq INTEGER)`)
	if err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Fatalf("reserved column create = %v, want reserved-name error", err)
	}
}

func TestConcurrentScatterQueries(t *testing.T) {
	coord, oracle, _ := cluster(t, 4)
	execBoth(t, coord, oracle, paperdata.All)
	want, err := oracle.QueryContext(context.Background(),
		`SELECT prodName, SUM(revenue) AS r FROM Orders GROUP BY prodName ORDER BY prodName`)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := coord.Query(context.Background(),
				`SELECT prodName, SUM(revenue) AS r FROM Orders GROUP BY prodName ORDER BY prodName`)
			if err != nil {
				errs <- err
				return
			}
			if len(got.Rows) != len(want.Rows) {
				errs <- fmt.Errorf("got %d rows, want %d", len(got.Rows), len(want.Rows))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
