package dist

// The mutation path: DDL broadcasts to every shard, INSERT partitions
// rows by the partition column's hash, and both are recorded in a
// per-shard replay log before any endpoint sees them. Replication to an
// endpoint is a compare-and-swap on its catalog version — entry i
// applies only at version i — which makes application exactly-once even
// across lost acks (a transport error is resolved by probing /catalog:
// the entry landed iff the version advanced) and makes a restarted,
// empty endpoint self-identifying (its version fell below the cursor,
// so the log replays from where it stands).

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"

	"github.com/measures-sql/msql/internal/ast"
	"github.com/measures-sql/msql/internal/engine"
	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/fn"
	"github.com/measures-sql/msql/internal/sqltypes"
	"github.com/measures-sql/msql/internal/wire"
	"github.com/measures-sql/msql/msql"
)

// seqCol is the hidden ordering column appended to every sharded
// table: a global insertion sequence that lets the coordinator rebuild
// (or merge) rows in exactly the order a single node would have seen
// them, which is what makes gathered and scattered results bit-
// identical to the single-node oracle.
const seqCol = "__mseq"

func bindErr(format string, args ...any) error {
	return &exec.Error{Code: exec.CodeBind, Phase: exec.PhaseBind, Pos: -1, Err: fmt.Errorf(format, args...)}
}

// runOne executes one statement (row-producing or not) on db and
// returns its result.
func runOne(ctx context.Context, db *msql.DB, sql string) (*msql.Result, error) {
	results, err := db.RunContext(ctx, sql)
	if err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return &msql.Result{Message: "ok"}, nil
	}
	return results[len(results)-1], nil
}

// exec applies one mutation statement: validate against the local
// mirrors, log per shard, then push to every endpoint of every affected
// shard. A shard counts as reached when at least one of its endpoints
// acknowledged; shards with no reachable endpoint are reported in a
// structured unavailability error, and the logged entry replays to them
// on rejoin.
func (c *Coordinator) execStmt(ctx context.Context, stmt ast.Statement, reqID string) (*msql.Result, error) {
	c.mutMu.Lock()
	defer c.mutMu.Unlock()
	switch s := stmt.(type) {
	case *ast.CreateTable:
		return c.execCreateTable(ctx, s, reqID)
	case *ast.CreateView, *ast.Drop:
		return c.execSchemaChange(ctx, stmt, reqID)
	case *ast.Insert:
		return c.execInsert(ctx, s, reqID)
	default:
		// Session statements (SET, KILL, PREPARE, ...) act on the
		// coordinator's own session.
		return runOne(ctx, c.local, ast.FormatStatement(stmt))
	}
}

func (c *Coordinator) execCreateTable(ctx context.Context, s *ast.CreateTable, reqID string) (*msql.Result, error) {
	for _, col := range s.Cols {
		if lower(col.Name) == seqCol {
			return nil, bindErr("column name %q is reserved for distributed execution", seqCol)
		}
	}
	localSQL := ast.FormatStatement(s)
	shardStmt := *s
	shardStmt.Cols = append(append([]ast.ColumnDef{}, s.Cols...), ast.ColumnDef{Name: seqCol, TypeName: "INTEGER"})
	shardSQL := ast.FormatStatement(&shardStmt)

	res, err := runOne(ctx, c.local, localSQL)
	if err != nil {
		return nil, err
	}
	if _, err := runOne(ctx, c.shadow, shardSQL); err != nil {
		// Keep the mirrors consistent: undo the local side.
		_, _ = runOne(ctx, c.local, "DROP TABLE "+s.Name)
		return nil, err
	}

	meta := &tableMeta{name: s.Name, pcol: 0}
	for _, col := range s.Cols {
		meta.cols = append(meta.cols, col.Name)
		meta.kinds = append(meta.kinds, sqltypes.KindFromName(col.TypeName))
	}
	if want, ok := c.cfg.PartitionCols[lower(s.Name)]; ok {
		meta.pcol = -1
		for i, col := range meta.cols {
			if lower(col) == lower(want) {
				meta.pcol = i
			}
		}
		if meta.pcol < 0 {
			_, _ = runOne(ctx, c.local, "DROP TABLE "+s.Name)
			_, _ = runOne(ctx, c.shadow, "DROP TABLE "+s.Name)
			return nil, bindErr("partition column %q not found in table %s", want, s.Name)
		}
	}

	c.mu.Lock()
	c.tables[lower(s.Name)] = meta
	c.ddl = append(c.ddl, localSQL)
	c.mu.Unlock()
	return res, c.broadcast(ctx, mutation{sql: shardSQL}, reqID)
}

func (c *Coordinator) execSchemaChange(ctx context.Context, stmt ast.Statement, reqID string) (*msql.Result, error) {
	sql := ast.FormatStatement(stmt)
	res, err := runOne(ctx, c.local, sql)
	if err != nil {
		return nil, err
	}
	if _, err := runOne(ctx, c.shadow, sql); err != nil {
		// A view can be valid against the original schema yet invalid
		// against the shard schema only in pathological cases; surface
		// it rather than diverge, and undo the local apply.
		if cv, ok := stmt.(*ast.CreateView); ok {
			_, _ = runOne(ctx, c.local, "DROP VIEW "+cv.Name)
		}
		return nil, err
	}
	if d, ok := stmt.(*ast.Drop); ok && d.Kind == "TABLE" {
		c.mu.Lock()
		delete(c.tables, lower(d.Name))
		c.mu.Unlock()
	}
	c.mu.Lock()
	c.ddl = append(c.ddl, sql)
	c.mu.Unlock()
	return res, c.broadcast(ctx, mutation{sql: sql}, reqID)
}

func (c *Coordinator) execInsert(ctx context.Context, s *ast.Insert, reqID string) (*msql.Result, error) {
	meta, ok := c.meta(s.Table)
	if !ok {
		return nil, bindErr("unknown table %s", s.Table)
	}

	var rows [][]sqltypes.Value
	switch {
	case s.Query != nil:
		// INSERT ... SELECT: run the source query through the
		// coordinator itself (it may touch sharded tables), then
		// partition the materialized rows.
		res, err := c.queryText(ctx, ast.FormatQuery(s.Query), reqID)
		if err != nil {
			return nil, err
		}
		rows = res.Rows
	default:
		for _, exprs := range s.Rows {
			row := make([]sqltypes.Value, len(exprs))
			for i, e := range exprs {
				v, err := engine.EvalConstExpr(e)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			rows = append(rows, row)
		}
	}

	full, err := expandInsertColumns(meta, s.Columns, rows)
	if err != nil {
		return nil, err
	}

	// Coerce (mirroring storage), assign the global sequence, and
	// partition.
	batches := make([][][]sqltypes.Value, len(c.shards))
	c.mu.Lock()
	for _, row := range full {
		for i := range row {
			v, err := coerceValue(row[i], meta.kinds[i])
			if err != nil {
				c.mu.Unlock()
				return nil, exec.Wrap(fmt.Errorf("column %s: %w", meta.cols[i], err), exec.CodeRuntime, exec.PhaseExecute)
			}
			row[i] = v
		}
		idx := c.shardFor(row[meta.pcol])
		withSeq := make([]sqltypes.Value, len(row)+1)
		copy(withSeq, row)
		withSeq[len(row)] = sqltypes.NewInt(c.seq)
		c.seq++
		batches[idx] = append(batches[idx], withSeq)
	}
	c.mu.Unlock()

	failed := map[int]error{}
	for idx, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		m := mutation{table: meta.name, rows: wire.EncodeRowsBinary(batch)}
		sh := c.shards[idx]
		sh.appendLog(m)
		if err := c.pushShard(ctx, sh, reqID); err != nil {
			failed[idx] = err
		}
	}
	if len(failed) > 0 {
		c.metrics.shardErrors.Add(1)
		return nil, unavailable(failed)
	}
	return &msql.Result{Message: fmt.Sprintf("%d rows inserted", len(full))}, nil
}

// expandInsertColumns maps a (possibly partial) column list onto the
// table's full column order, filling unnamed columns with NULL.
func expandInsertColumns(meta *tableMeta, cols []string, rows [][]sqltypes.Value) ([][]sqltypes.Value, error) {
	if len(cols) == 0 {
		for _, row := range rows {
			if len(row) != len(meta.cols) {
				return nil, bindErr("INSERT into %s expects %d values, got %d", meta.name, len(meta.cols), len(row))
			}
		}
		return rows, nil
	}
	pos := make([]int, len(cols))
	for i, name := range cols {
		pos[i] = -1
		for j, col := range meta.cols {
			if lower(col) == lower(name) {
				pos[i] = j
			}
		}
		if pos[i] < 0 {
			return nil, bindErr("unknown column %s in INSERT into %s", name, meta.name)
		}
	}
	out := make([][]sqltypes.Value, len(rows))
	for r, row := range rows {
		if len(row) != len(cols) {
			return nil, bindErr("INSERT into %s expects %d values, got %d", meta.name, len(cols), len(row))
		}
		full := make([]sqltypes.Value, len(meta.cols))
		for j, k := range meta.kinds {
			full[j] = sqltypes.Null(k)
		}
		for i, v := range row {
			full[pos[i]] = v
		}
		out[r] = full
	}
	return out, nil
}

// coerceValue mirrors the storage layer's insert coercion so the value
// the coordinator hashes is byte-identical to the value the shard
// stores (and to the literal a routed query will hash later).
func coerceValue(v sqltypes.Value, kind sqltypes.Kind) (sqltypes.Value, error) {
	if v.Null {
		return sqltypes.Null(kind), nil
	}
	if v.K == kind {
		return v, nil
	}
	switch {
	case kind == sqltypes.KindFloat && v.K == sqltypes.KindInt,
		kind == sqltypes.KindDate && v.K == sqltypes.KindString:
		return sqltypes.Cast(v, kind)
	case kind == sqltypes.KindInt && v.K == sqltypes.KindFloat:
		if v.F == float64(int64(v.F)) {
			return sqltypes.NewInt(int64(v.F)), nil
		}
		return sqltypes.Value{}, fmt.Errorf("cannot insert non-integral %v into INTEGER column", v)
	default:
		return sqltypes.Value{}, fmt.Errorf("cannot insert %s value into %s column", v.K, kind)
	}
}

// shardFor hashes a coerced partition value's canonical encoding. The
// FNV digest gets a 64-bit avalanche finalizer: raw FNV modulo a small
// (especially power-of-two) shard count collapses onto a few residues
// for dense integer keys, which would leave shards empty.
func (c *Coordinator) shardFor(v sqltypes.Value) int {
	h := fnv.New64a()
	h.Write(fn.AppendValue(nil, v))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x % uint64(len(c.shards)))
}

// broadcast logs m on every shard and pushes; shards with no reachable
// endpoint are reported as unavailable (the entry replays on rejoin).
func (c *Coordinator) broadcast(ctx context.Context, m mutation, reqID string) error {
	for _, sh := range c.shards {
		sh.appendLog(m)
	}
	failed := map[int]error{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, sh := range c.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			if err := c.pushShard(ctx, sh, reqID); err != nil {
				mu.Lock()
				failed[sh.idx] = err
				mu.Unlock()
			}
		}(sh)
	}
	wg.Wait()
	if len(failed) > 0 {
		c.metrics.shardErrors.Add(1)
		return unavailable(failed)
	}
	return nil
}

// pushShard replicates the shard's log to every endpoint; the shard is
// reached when at least one endpoint is fully synced. Endpoints that
// fail keep their cursor and are repaired on a later push, a query-time
// sync, or a breaker half-open probe.
func (c *Coordinator) pushShard(ctx context.Context, sh *shard, reqID string) error {
	var firstErr error
	okCount := 0
	for _, ep := range sh.endpoints {
		if !ep.br.Allow() {
			continue
		}
		if err := c.syncEndpoint(ctx, sh, ep, reqID); err != nil {
			ep.br.Failure(err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ep.br.Success()
		okCount++
	}
	if okCount == 0 {
		if firstErr == nil {
			firstErr = fmt.Errorf("all %d endpoints have open circuit breakers", len(sh.endpoints))
		}
		return fmt.Errorf("shard %d: %w", sh.idx, firstErr)
	}
	return nil
}

// syncEndpoint replays the shard log tail to ep under the CAS
// discipline. It resolves lost acks by probing the catalog version, and
// rewinds the cursor when the endpoint reports a version below it
// (a restarted endpoint that lost state).
func (c *Coordinator) syncEndpoint(ctx context.Context, sh *shard, ep *endpoint, reqID string) error {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	const maxAttemptsPerEntry = 4
	attempts := 0
	for {
		n := sh.logLen()
		if ep.applied >= n {
			return nil
		}
		m, ok := sh.entry(ep.applied)
		if !ok {
			return fmt.Errorf("shard %d: log entry %d vanished", sh.idx, ep.applied)
		}
		expect := int64(ep.applied)
		var v int64
		var applied bool
		var err error
		if m.sql != "" {
			v, applied, err = ep.cli.ApplyDDL(ctx, m.sql, expect, reqID)
		} else {
			v, applied, err = ep.cli.ApplyRows(ctx, m.table, m.rows, expect, reqID)
		}
		if err != nil {
			if ctx.Err() != nil {
				return err
			}
			// Lost ack: did it land? The catalog version answers
			// unambiguously.
			info, perr := ep.cli.Catalog(ctx)
			if perr != nil {
				return fmt.Errorf("applying log entry %d: %w", ep.applied, err)
			}
			v, applied = info.Version, false
		}
		switch {
		case applied, v == expect+1:
			ep.applied++
			attempts = 0
		case v < expect:
			// The endpoint lost state (restart). Its version counts the
			// mutations it still holds — rewind and replay the tail.
			ep.applied = int(v)
			attempts = 0
		case v == expect:
			// Transport failed and the probe shows the entry did not
			// land: try the same entry again, boundedly.
			attempts++
			if attempts >= maxAttemptsPerEntry {
				return fmt.Errorf("applying log entry %d: %w", ep.applied, err)
			}
		default:
			return fmt.Errorf("shard %d endpoint %s diverged: at catalog version %d, expected at most %d",
				sh.idx, ep.url, v, expect+1)
		}
	}
}

// rewindAndSync handles a catalog-version mismatch reported by a read:
// the endpoint is at a different version than our cursor says, most
// likely because it restarted and lost state after the cursor had
// caught up (so the CAS replay loop, which only runs while entries are
// pending, never got a chance to notice). Probe the authoritative
// version, rewind the cursor to it, and replay the tail.
func (c *Coordinator) rewindAndSync(ctx context.Context, sh *shard, ep *endpoint, reqID string) error {
	info, err := ep.cli.Catalog(ctx)
	if err != nil {
		return err
	}
	ep.mu.Lock()
	if int(info.Version) < ep.applied {
		ep.applied = int(info.Version)
	}
	ep.mu.Unlock()
	return c.syncEndpoint(ctx, sh, ep, reqID)
}

// ensureSynced fast-paths the common case (cursor already at the log
// head) and otherwise replays the tail before a read.
func (c *Coordinator) ensureSynced(ctx context.Context, sh *shard, ep *endpoint, reqID string) error {
	if int(ep.version()) >= sh.logLen() {
		return nil
	}
	return c.syncEndpoint(ctx, sh, ep, reqID)
}
