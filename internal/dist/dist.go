// Package dist is the fault-tolerant distributed coordinator: it
// hash-partitions tables across N msqld shard processes and executes
// measure queries scatter-gather over the existing wire protocol.
//
// Execution picks the cheapest of four paths per query, every one of
// which is bit-identical to running the same statements on a single
// node:
//
//   - local: queries touching no sharded table run on the coordinator's
//     own session (msql_stats.* introspection, constants).
//   - routed: a query whose WHERE pins the partition column to a literal
//     runs whole on the one shard that owns that partition.
//   - scatter: a mergeable aggregation is rewritten (ORDER BY/LIMIT
//     stripped, a MIN(__mseq) bookkeeping aggregate appended) and pushed
//     to every shard; the per-shard partial states merge exactly on the
//     coordinator, which then finishes the original plan locally.
//     Only aggregates whose two-phase merge is provably exact are
//     scattered — everything else falls through.
//   - gather: any other query fetches the sharded tables' rows, rebuilds
//     them in global insertion order in a scratch session, and runs the
//     original statement there. Slow but always available and always
//     exact.
//
// The robustness contract: every query either returns a complete
// result, transparently retries/hedges/fails over to finish anyway, or
// fails with a structured *ShardUnavailableError naming the shards
// lost. A silently partial result is never returned. Per-endpoint
// circuit breakers (closed/open/half-open) stop hammering dead shards;
// a restarted (empty) shard is detected by its catalog version and
// repaired by replaying the coordinator's per-shard mutation log.
package dist

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/sqltypes"
	"github.com/measures-sql/msql/msql"
	"github.com/measures-sql/msql/msql/client"
)

// Config describes a topology and its failure policy. The zero value of
// every field except Shards gets a serviceable default.
type Config struct {
	// Shards lists each shard's endpoint URLs, primary first; later
	// entries are replicas that must receive the same mutations (the
	// coordinator replicates to all endpoints of a shard).
	Shards [][]string
	// PartitionCols overrides the partition column per table (keys are
	// case-insensitive table names). Default: the table's first column.
	PartitionCols map[string]string
	// QueryTimeout bounds each distributed statement (default 30s);
	// per-shard calls inherit the remaining budget as their deadline.
	QueryTimeout time.Duration
	// Backoff is the transport retry policy handed to each shard
	// client (zero value: the client's defaults).
	Backoff client.Backoff
	// BreakerThreshold is the consecutive-failure count that opens an
	// endpoint's circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker sheds calls before
	// admitting a half-open probe (default 500ms).
	BreakerCooldown time.Duration
	// HedgeDelay seeds the hedging delay before an endpoint has latency
	// history; with history the delay is the endpoint's observed p99
	// (default 50ms).
	HedgeDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 500 * time.Millisecond
	}
	if c.HedgeDelay <= 0 {
		c.HedgeDelay = 50 * time.Millisecond
	}
	return c
}

// tableMeta is the coordinator's record of one sharded table.
type tableMeta struct {
	name  string // as created
	cols  []string
	kinds []sqltypes.Kind
	pcol  int // partition column index
}

// mutation is one entry of a shard's replay log: either a statement or
// a pre-partitioned row batch.
type mutation struct {
	sql   string // shard-form statement ("" for a row batch)
	table string // row-batch target table
	rows  string // wire.EncodeRowsBinary payload
}

// endpoint is one URL of a shard plus everything needed to call it
// safely: a retrying client, a circuit breaker, the applied-mutation
// cursor (== the catalog version we believe it is at), and a latency
// ring for the p99 hedge delay.
type endpoint struct {
	url string
	cli *client.Client
	tr  *http.Transport // owned, so Close can drop idle connections
	br  breaker

	mu      sync.Mutex // guards applied and serializes log replay
	applied int        // log entries applied; catalog version = applied

	lat    latRing
	hedges atomic.Int64 // hedged requests sent to this endpoint
}

// version returns the catalog version this endpoint should be at.
func (ep *endpoint) version() int64 {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return int64(ep.applied)
}

// shard is one partition of every sharded table: a replay log and the
// endpoints (primary + replicas) that replicate it.
type shard struct {
	idx       int
	endpoints []*endpoint

	mu  sync.Mutex
	log []mutation
}

func (sh *shard) logLen() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.log)
}

func (sh *shard) entry(i int) (mutation, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if i < 0 || i >= len(sh.log) {
		return mutation{}, false
	}
	return sh.log[i], true
}

func (sh *shard) appendLog(m mutation) {
	sh.mu.Lock()
	sh.log = append(sh.log, m)
	sh.mu.Unlock()
}

// Coordinator executes statements across a sharded msqld topology. It
// is safe for concurrent queries; mutations serialize among themselves
// like a single msql.DB session.
type Coordinator struct {
	cfg    Config
	shards []*shard

	// local mirrors the original (user-visible) schema and stays empty
	// of rows: it plans queries for classification, answers queries
	// that touch no sharded table, synthesizes empty-input aggregate
	// rows, and hosts the msql_stats.shards virtual table and shard
	// metrics.
	local *msql.DB
	// shadow mirrors the shard-side schema — every sharded table gets
	// the hidden __mseq INTEGER ordering column appended — so shard-
	// bound query rewrites can be planned and validated before any
	// shard sees them.
	shadow *msql.DB

	// catalog state. mu guards tables/ddl/seq; mutations additionally
	// serialize on mutMu for the whole broadcast.
	mu     sync.Mutex
	mutMu  sync.Mutex
	tables map[string]*tableMeta // key: lower(name)
	ddl    []string              // original-form DDL replay log (scratch sessions)
	seq    int64                 // next global __mseq

	reqSeq  atomic.Int64
	metrics counters

	traceMu sync.Mutex
	tracer  msql.TraceHook
}

// New builds a coordinator over cfg.Shards. Shard endpoints are
// expected to start empty (catalog version 0) or to hold a durable
// prefix of this coordinator's mutation log; anything else is reported
// as divergence when first touched.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("dist: at least one shard is required")
	}
	c := &Coordinator{
		cfg:    cfg,
		local:  msql.Open(),
		shadow: msql.Open(),
		tables: map[string]*tableMeta{},
	}
	for i, urls := range cfg.Shards {
		if len(urls) == 0 {
			return nil, fmt.Errorf("dist: shard %d has no endpoints", i)
		}
		sh := &shard{idx: i}
		for _, u := range urls {
			tr := &http.Transport{}
			ep := &endpoint{url: u, tr: tr, cli: client.New(u,
				client.WithBackoff(cfg.Backoff),
				client.WithHTTPClient(&http.Client{Transport: tr}))}
			ep.br.threshold = cfg.BreakerThreshold
			ep.br.cooldown = cfg.BreakerCooldown
			ep.br.onOpen = func() { c.metrics.breakerOpens.Add(1) }
			sh.endpoints = append(sh.endpoints, ep)
		}
		c.shards = append(c.shards, sh)
	}
	c.local.RegisterShardMetrics(c.shardCounters)
	if err := c.registerShardsTable(); err != nil {
		return nil, err
	}
	return c, nil
}

// Close releases the coordinator's local sessions and drops idle shard
// connections. Shard processes are not touched.
func (c *Coordinator) Close() error {
	for _, sh := range c.shards {
		for _, ep := range sh.endpoints {
			ep.tr.CloseIdleConnections()
		}
	}
	err := c.local.Close()
	if err2 := c.shadow.Close(); err == nil {
		err = err2
	}
	return err
}

// Local exposes the coordinator's local session (schema mirror,
// msql_stats.shards, shard metrics) for introspection surfaces.
func (c *Coordinator) Local() *msql.DB { return c.local }

// SetTrace installs a hook receiving coordinator spans (shard calls
// carry shard=, endpoint=, attempt=, and request_id= attributes) in
// addition to the local session's own lifecycle spans.
func (c *Coordinator) SetTrace(t msql.TraceHook) {
	c.traceMu.Lock()
	c.tracer = t
	c.traceMu.Unlock()
	c.local.SetTrace(t)
}

func (c *Coordinator) span(s exec.Span) {
	c.traceMu.Lock()
	t := c.tracer
	c.traceMu.Unlock()
	if t != nil {
		t.Span(s)
	}
}

func (c *Coordinator) newRequestID() string {
	return fmt.Sprintf("coord-%d-%d", time.Now().UnixNano(), c.reqSeq.Add(1))
}

// meta returns the sharded-table record for name, if any.
func (c *Coordinator) meta(name string) (*tableMeta, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[lower(name)]
	return t, ok
}

func (c *Coordinator) ddlSnapshot() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.ddl))
	copy(out, c.ddl)
	return out
}

// latRing records recent call latencies for the p99 hedge delay.
type latRing struct {
	mu   sync.Mutex
	buf  [128]time.Duration
	n    int // valid entries
	next int
}

func (r *latRing) record(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// p99 returns the 99th-percentile recorded latency, or 0 with fewer
// than 8 samples (not enough signal to beat the configured default).
func (r *latRing) p99() time.Duration {
	r.mu.Lock()
	n := r.n
	tmp := make([]time.Duration, n)
	copy(tmp, r.buf[:n])
	r.mu.Unlock()
	if n < 8 {
		return 0
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	return tmp[(n*99)/100]
}

// hedgeDelay picks the delay before hedging away from ep: its observed
// p99, or the configured default before there is history.
func (c *Coordinator) hedgeDelay(ep *endpoint) time.Duration {
	if d := ep.lat.p99(); d > 0 {
		return d
	}
	return c.cfg.HedgeDelay
}

// callShard runs op against sh with the full failure envelope: breaker
// gating, failover across endpoints in order, and hedging to the next
// endpoint after the p99 delay. It returns the first success; if every
// endpoint fails (or is shed by its breaker) the error reports the
// shard as unavailable.
func callShard[T any](ctx context.Context, c *Coordinator, sh *shard, name, reqID string, op func(context.Context, *endpoint) (T, error)) (T, error) {
	var zero T
	var lastErr error
	var attempts atomic.Int64
	run := func(cctx context.Context, ep *endpoint) (T, error) {
		if attempts.Add(1) > 1 {
			c.metrics.retries.Add(1)
		}
		start := time.Now()
		v, err := op(cctx, ep)
		dur := time.Since(start)
		c.span(exec.Span{Phase: "shard", Name: name, DurNs: int64(dur), Attrs: map[string]string{
			"shard":      fmt.Sprintf("%d", sh.idx),
			"endpoint":   ep.url,
			"attempt":    fmt.Sprintf("%d", attempts.Load()),
			"request_id": reqID,
			"ok":         fmt.Sprintf("%t", err == nil),
		}})
		switch {
		case err == nil:
			ep.lat.record(dur)
			ep.br.Success()
		case cctx.Err() != nil && ctx.Err() == nil:
			// Canceled because it lost a hedge race, not because the
			// endpoint failed: no breaker penalty.
		default:
			ep.br.Failure(err)
		}
		return v, err
	}

	eps := make([]*endpoint, 0, len(sh.endpoints))
	for _, ep := range sh.endpoints {
		if ep.br.Allow() {
			eps = append(eps, ep)
		}
	}
	if len(eps) == 0 {
		return zero, fmt.Errorf("shard %d: all %d endpoints have open circuit breakers", sh.idx, len(sh.endpoints))
	}
	for i := 0; i < len(eps); i++ {
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		if i > 0 {
			c.metrics.failovers.Add(1)
		}
		ep := eps[i]
		if i+1 < len(eps) {
			// Race the next endpoint after the hedge delay: a lagging
			// (but alive) primary no longer holds the whole query's tail
			// latency hostage.
			next := eps[i+1]
			v, out, err := client.Hedge(ctx, c.hedgeDelay(ep),
				func(hctx context.Context) (T, error) { return run(hctx, ep) },
				func(hctx context.Context) (T, error) {
					c.metrics.hedges.Add(1)
					next.hedges.Add(1)
					return run(hctx, next)
				})
			if err == nil {
				if out.Winner == 1 {
					c.metrics.failovers.Add(1)
				}
				return v, nil
			}
			lastErr = err
			if out.Hedged {
				i++ // the hedge consumed the next endpoint too
			}
			continue
		}
		v, err := run(ctx, ep)
		if err == nil {
			return v, nil
		}
		lastErr = err
	}
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	return zero, fmt.Errorf("shard %d: all endpoints failed: %w", sh.idx, lastErr)
}

func lower(s string) string {
	b := []byte(s)
	for i, ch := range b {
		if 'A' <= ch && ch <= 'Z' {
			b[i] = ch + ('a' - 'A')
		}
	}
	return string(b)
}
