package binder

import (
	"fmt"
	"strings"

	"github.com/measures-sql/msql/internal/ast"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// aggBinder carries the state of binding one aggregate query: the group
// keys, accumulated aggregate calls, and everything measure expansion
// needs to know about the call site.
type aggBinder struct {
	b          *Binder
	fr         *fromResult
	whereExpr  plan.Expr // over the FROM row
	groupExprs []plan.Expr
	groupNames []string // dimension names: column name or select alias, "" if unnameable
	sets       [][]int
	aggs       []plan.AggCall
	aggIdx     map[string]int
	groupIdx   map[string]int // groupExprs[i].String() -> i
	grouping   map[int]int    // key index -> agg index of its GROUPING indicator
	input      plan.Node      // the (filtered) aggregate input
}

func (ab *aggBinder) nKeys() int       { return len(ab.groupExprs) }
func (ab *aggBinder) aggOut(i int) int { return ab.nKeys() + i }
func (ab *aggBinder) multiSets() bool  { return len(ab.sets) > 1 }

func (ab *aggBinder) addAgg(call plan.AggCall) int {
	key := call.String()
	if i, ok := ab.aggIdx[key]; ok {
		return i
	}
	i := len(ab.aggs)
	ab.aggs = append(ab.aggs, call)
	ab.aggIdx[key] = i
	return i
}

// groupingAgg returns the aggregate index of the GROUPING indicator for
// key j, adding it if needed.
func (ab *aggBinder) groupingAgg(j int) int {
	if i, ok := ab.grouping[j]; ok {
		return i
	}
	i := ab.addAgg(plan.AggCall{Name: "GROUPING", KeyIndex: j, Typ: sqltypes.Type{Kind: sqltypes.KindInt}})
	ab.grouping[j] = i
	return i
}

// keyRef returns a reference to group key j in the aggregate output row.
func (ab *aggBinder) keyRef(j int) *plan.ColRef {
	return &plan.ColRef{Index: j, Name: ab.groupNames[j], Typ: ab.groupExprs[j].Type()}
}

// groupingGuard returns a call-site expression (at corr level 1, for use
// inside a measure subquery) giving key j's GROUPING indicator, or nil
// when there is a single grouping set.
func (ab *aggBinder) groupingGuard(j int) plan.Expr {
	if !ab.multiSets() {
		return nil
	}
	gi := ab.groupingAgg(j)
	return &plan.CorrRef{Levels: 1, Index: ab.aggOut(gi), Name: "grouping", Typ: sqltypes.Type{Kind: sqltypes.KindInt}}
}

func (b *Binder) bindAggSelect(sel *ast.Select, items []*selItem, orderBy []ast.OrderItem, fr *fromResult, whereExpr plan.Expr) (plan.Node, error) {
	var input plan.Node = fr.node
	if whereExpr != nil {
		input = &plan.Filter{Input: input, Pred: whereExpr}
	}
	for _, item := range items {
		if item.measureDef {
			return nil, fmt.Errorf("AS MEASURE is not allowed in an aggregate query; define the measure in a subquery over the grouped result instead")
		}
	}
	if sel.Qualify != nil {
		return nil, fmt.Errorf("QUALIFY is not supported together with GROUP BY; filter a subquery instead")
	}

	ab := &aggBinder{
		b:         b,
		fr:        fr,
		whereExpr: whereExpr,
		aggIdx:    map[string]int{},
		groupIdx:  map[string]int{},
		grouping:  map[int]int{},
		input:     input,
	}

	// Bind the grouping items and build the grouping sets.
	if err := ab.bindGroupBy(sel.GroupBy, items); err != nil {
		return nil, err
	}

	// Bind select items raw, then rewrite over the aggregate output.
	finalExprs := make([]plan.NamedExpr, len(items))
	for i, item := range items {
		eb := &exprBinder{b: b, scope: fr.scope, allowAgg: true, allowMeasures: true}
		raw, err := eb.bind(item.astExpr)
		if err != nil {
			return nil, fmt.Errorf("in SELECT item %d: %w", i+1, err)
		}
		item.raw = raw
		rewritten, err := ab.rewrite(raw)
		if err != nil {
			return nil, fmt.Errorf("in SELECT item %d (%s): %w", i+1, item.alias, err)
		}
		finalExprs[i] = plan.NamedExpr{Expr: rewritten, Col: plan.Col{Name: item.alias, Typ: rewritten.Type()}}
	}

	// HAVING.
	var havingExpr plan.Expr
	if sel.Having != nil {
		eb := &exprBinder{b: b, scope: fr.scope, allowAgg: true, allowMeasures: true}
		raw, err := eb.bind(sel.Having)
		if err != nil {
			return nil, fmt.Errorf("in HAVING: %w", err)
		}
		havingExpr, err = ab.rewrite(raw)
		if err != nil {
			return nil, fmt.Errorf("in HAVING: %w", err)
		}
		if err := requireBool(havingExpr, "HAVING"); err != nil {
			return nil, err
		}
	}

	// The aggregate node's schema: keys then aggs.
	aggSch := &plan.Schema{}
	for j, g := range ab.groupExprs {
		name := ab.groupNames[j]
		if name == "" {
			name = fmt.Sprintf("key%d", j)
		}
		aggSch.Cols = append(aggSch.Cols, plan.Col{Name: name, Typ: g.Type()})
	}
	for i, a := range ab.aggs {
		aggSch.Cols = append(aggSch.Cols, plan.Col{Name: fmt.Sprintf("agg%d", i), Typ: a.Typ})
	}
	var node plan.Node = &plan.Aggregate{
		Input:      input,
		GroupExprs: ab.groupExprs,
		Sets:       ab.sets,
		Aggs:       ab.aggs,
		Sch:        aggSch,
	}
	if havingExpr != nil {
		node = &plan.Filter{Input: node, Pred: havingExpr}
	}
	aggOut := node

	sch := &plan.Schema{Cols: make([]plan.Col, len(finalExprs))}
	for i, ne := range finalExprs {
		sch.Cols[i] = ne.Col
	}
	node = &plan.Project{Input: node, Exprs: finalExprs, Sch: sch}

	return b.finishSelect(node, sel.Distinct, orderBy, items, func(e ast.Expr) (plan.Expr, error) {
		eb := &exprBinder{b: b, scope: fr.scope, allowAgg: true, allowMeasures: true}
		raw, err := eb.bind(e)
		if err != nil {
			return nil, err
		}
		return ab.rewrite(raw)
	}, aggOut)
}

// bindGroupBy resolves GROUP BY items (expressions, ordinals, aliases,
// ROLLUP/CUBE/GROUPING SETS) into group expressions and grouping sets.
func (ab *aggBinder) bindGroupBy(groupBy []ast.GroupItem, items []*selItem) error {
	// sets-so-far starts as a single empty set; each GROUP BY item
	// cross-multiplies it with its own sets (SQL standard semantics).
	ab.sets = [][]int{{}}

	addKey := func(e ast.Expr) (int, error) {
		bound, name, err := ab.bindGroupExpr(e, items)
		if err != nil {
			return 0, err
		}
		key := bound.String()
		if j, ok := ab.groupIdx[key]; ok {
			return j, nil
		}
		j := len(ab.groupExprs)
		ab.groupExprs = append(ab.groupExprs, bound)
		ab.groupNames = append(ab.groupNames, name)
		ab.groupIdx[key] = j
		return j, nil
	}

	cross := func(itemSets [][]int) {
		var out [][]int
		for _, s := range ab.sets {
			for _, t := range itemSets {
				merged := append(append([]int{}, s...), t...)
				out = append(out, merged)
			}
		}
		ab.sets = out
	}

	for _, item := range groupBy {
		switch item.Kind {
		case ast.GroupExpr:
			j, err := addKey(item.Exprs[0])
			if err != nil {
				return err
			}
			cross([][]int{{j}})
		case ast.GroupRollup:
			var idxs []int
			for _, e := range item.Exprs {
				j, err := addKey(e)
				if err != nil {
					return err
				}
				idxs = append(idxs, j)
			}
			var itemSets [][]int
			for n := len(idxs); n >= 0; n-- {
				itemSets = append(itemSets, append([]int{}, idxs[:n]...))
			}
			cross(itemSets)
		case ast.GroupCube:
			var idxs []int
			for _, e := range item.Exprs {
				j, err := addKey(e)
				if err != nil {
					return err
				}
				idxs = append(idxs, j)
			}
			var itemSets [][]int
			for mask := (1 << len(idxs)) - 1; mask >= 0; mask-- {
				var s []int
				for k, j := range idxs {
					if mask&(1<<k) != 0 {
						s = append(s, j)
					}
				}
				itemSets = append(itemSets, s)
			}
			cross(itemSets)
		case ast.GroupSets:
			var itemSets [][]int
			for _, set := range item.Sets {
				var s []int
				for _, e := range set {
					j, err := addKey(e)
					if err != nil {
						return err
					}
					s = append(s, j)
				}
				itemSets = append(itemSets, s)
			}
			cross(itemSets)
		}
	}
	return nil
}

// bindGroupExpr binds one grouping expression. It resolves ordinals and
// select aliases, and derives the dimension name used by AT (SET/ALL)
// modifiers: the bare column name, or the select alias whose expression
// matches (an "ad hoc dimension", paper §3.5).
func (ab *aggBinder) bindGroupExpr(e ast.Expr, items []*selItem) (plan.Expr, string, error) {
	// Ordinal: GROUP BY 1.
	if n, ok := e.(*ast.NumberLit); ok && n.IsInt {
		if n.Int < 1 || int(n.Int) > len(items) {
			return nil, "", fmt.Errorf("GROUP BY position %d is out of range", n.Int)
		}
		e = items[n.Int-1].astExpr
	}
	eb := &exprBinder{b: ab.b, scope: ab.fr.scope}
	bound, err := eb.bind(e)
	if err == nil {
		name := ""
		if id, ok := e.(*ast.Ident); ok {
			name = id.Name()
		}
		// Prefer a select alias whose expression matches.
		for _, item := range items {
			if item.alias == "" || item.measureDef {
				continue
			}
			ib := &exprBinder{b: ab.b, scope: ab.fr.scope}
			ibound, ierr := ib.bind(item.astExpr)
			if ierr == nil && ibound.String() == bound.String() {
				name = item.alias
				break
			}
		}
		return bound, name, nil
	}
	// Alias: GROUP BY aliasName (only when not resolvable as a column).
	if id, ok := e.(*ast.Ident); ok && id.Qualifier() == "" {
		for _, item := range items {
			if strings.EqualFold(item.alias, id.Name()) && !item.measureDef {
				ib := &exprBinder{b: ab.b, scope: ab.fr.scope}
				bound, err2 := ib.bind(item.astExpr)
				if err2 != nil {
					return nil, "", err2
				}
				return bound, item.alias, nil
			}
		}
	}
	return nil, "", fmt.Errorf("in GROUP BY: %w", err)
}

// rewrite converts a raw bound expression (over the FROM row, with
// placeholders) into an expression over the aggregate output row.
func (ab *aggBinder) rewrite(e plan.Expr) (plan.Expr, error) {
	// A whole-expression match against a group key wins first, so
	// GROUP BY a+b allows SELECT a+b.
	if j, ok := ab.groupIdx[e.String()]; ok {
		return ab.keyRef(j), nil
	}
	switch x := e.(type) {
	case *aggPH:
		call := x.call
		if call.Name == "GROUPING" {
			j, ok := ab.groupIdx[call.Args[0].String()]
			if !ok {
				return nil, fmt.Errorf("GROUPING argument must be a grouping expression")
			}
			gi := ab.groupingAgg(j)
			return &plan.ColRef{Index: ab.aggOut(gi), Name: "grouping", Typ: call.Typ}, nil
		}
		i := ab.addAgg(call)
		return &plan.ColRef{Index: ab.aggOut(i), Name: strings.ToLower(call.Name), Typ: call.Typ}, nil
	case *measurePH:
		return ab.expandAggSite(x)
	case *windowPH:
		return nil, fmt.Errorf("window functions in aggregate queries are not supported; wrap the aggregation in a subquery")
	case *plan.ColRef:
		return nil, fmt.Errorf("column %s must appear in the GROUP BY clause or be used in an aggregate function", x.Name)
	case *plan.Lit, *plan.CorrRef, *plan.AggRef:
		return e, nil
	case *plan.Subquery:
		return ab.remapSubquery(x)
	default:
		return mapChildren(e, ab.rewrite)
	}
}

// keyMarker tags correlated references that have been retargeted to
// group-key outputs, so the validation pass can tell them apart from
// unresolved ones.
const keyMarker = "\x00key"

// remapSubquery fixes correlated references inside a nested subquery that
// point at this query's row: they were bound against the FROM row, but
// after aggregation the visible row is the aggregate output, so they must
// be retargeted to group keys. Whole correlated expressions that match a
// grouping expression (e.g. YEAR(o.orderDate) under GROUP BY
// YEAR(orderDate), as in the paper's Listing 11 expansion) are replaced
// by a reference to that key; anything else correlated to this frame is
// an error, matching the standard SQL restriction.
func (ab *aggBinder) remapSubquery(sq *plan.Subquery) (plan.Expr, error) {
	newPlan := plan.TransformNodeExprs(sq.Plan, func(e plan.Expr, depth int) plan.Expr {
		if lowered, ok := lowerCorr(e, depth+1); ok {
			if j, found := ab.groupIdx[lowered.String()]; found {
				return &plan.CorrRef{Levels: depth + 1, Index: j, Name: keyMarker, Typ: e.Type()}
			}
		}
		return e
	})
	// Validate: no unresolved correlations into this frame remain.
	var remapErr error
	var checkNode func(n plan.Node, depth int)
	checkNode = func(n plan.Node, depth int) {
		plan.VisitNodeExprs(n, func(e plan.Expr) {
			plan.WalkExprs(e, func(x plan.Expr) {
				switch x := x.(type) {
				case *plan.CorrRef:
					if x.Levels == depth+1 && x.Name != keyMarker && remapErr == nil {
						remapErr = fmt.Errorf("correlated reference to %s: subqueries in the SELECT list of a grouped query may only reference grouping expressions", x.Name)
					}
				case *plan.Subquery:
					checkNode(x.Plan, depth+1)
				}
			})
		})
		for _, c := range n.Children() {
			checkNode(c, depth)
		}
	}
	checkNode(newPlan, 0)
	if remapErr != nil {
		return nil, remapErr
	}
	c := *sq
	c.Plan = newPlan
	return &c, nil
}

// lowerCorr rewrites CorrRefs at exactly the given level into ColRefs so
// the expression can be compared with grouping expressions (which are
// bound over the FROM row). ok is false when the expression contains
// anything that cannot appear in a grouping expression.
func lowerCorr(e plan.Expr, level int) (plan.Expr, bool) {
	ok := true
	sawTarget := false
	out := plan.TransformExpr(e, func(x plan.Expr) plan.Expr {
		switch x := x.(type) {
		case *plan.CorrRef:
			if x.Levels == level && x.Name != keyMarker {
				sawTarget = true
				return &plan.ColRef{Index: x.Index, Name: x.Name, Typ: x.Typ}
			}
			ok = false
		case *plan.Subquery, *plan.AggRef:
			ok = false
		}
		return x
	})
	if !ok || !sawTarget {
		return nil, false
	}
	return out, true
}

// mapChildren rebuilds e with f applied to each direct child expression.
func mapChildren(e plan.Expr, f func(plan.Expr) (plan.Expr, error)) (plan.Expr, error) {
	var err error
	apply := func(x plan.Expr) plan.Expr {
		if err != nil || x == nil {
			return x
		}
		var out plan.Expr
		out, err = f(x)
		return out
	}
	applyList := func(list []plan.Expr) []plan.Expr {
		out := make([]plan.Expr, len(list))
		for i, x := range list {
			out[i] = apply(x)
		}
		return out
	}
	var out plan.Expr
	switch x := e.(type) {
	case *plan.Call:
		c := *x
		c.Args = applyList(x.Args)
		out = &c
	case *plan.And:
		c := *x
		c.L, c.R = apply(x.L), apply(x.R)
		out = &c
	case *plan.Or:
		c := *x
		c.L, c.R = apply(x.L), apply(x.R)
		out = &c
	case *plan.Not:
		c := *x
		c.X = apply(x.X)
		out = &c
	case *plan.IsNull:
		c := *x
		c.X = apply(x.X)
		out = &c
	case *plan.IsDistinct:
		c := *x
		c.L, c.R = apply(x.L), apply(x.R)
		out = &c
	case *plan.InList:
		c := *x
		c.X = apply(x.X)
		c.List = applyList(x.List)
		out = &c
	case *plan.Case:
		c := *x
		c.Whens = make([]plan.CaseWhen, len(x.Whens))
		for i, w := range x.Whens {
			c.Whens[i] = plan.CaseWhen{Cond: apply(w.Cond), Then: apply(w.Then)}
		}
		c.Else = apply(x.Else)
		out = &c
	case *plan.Cast:
		c := *x
		c.X = apply(x.X)
		out = &c
	default:
		return e, nil
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}
