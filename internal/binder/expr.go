package binder

import (
	"fmt"
	"strings"

	"github.com/measures-sql/msql/internal/ast"
	"github.com/measures-sql/msql/internal/core"
	"github.com/measures-sql/msql/internal/fn"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// Placeholder expression nodes: they implement plan.Expr so they can live
// in partially-bound trees, but the binder replaces all of them before a
// plan leaves the package.

// aggPH marks an aggregate function call; the aggregate-query rewrite
// hoists it into the Aggregate node and replaces it with a column
// reference. For GROUPING, Args holds the bound argument to be matched
// against a group expression.
type aggPH struct {
	call plan.AggCall
}

func (p *aggPH) Type() sqltypes.Type { return p.call.Typ }
func (p *aggPH) String() string      { return "aggPH{" + p.call.String() + "}" }

// windowPH marks a window function; the select binder hoists it into a
// Window node.
type windowPH struct {
	fn plan.WindowFunc
}

func (p *windowPH) Type() sqltypes.Type { return p.fn.Typ }
func (p *windowPH) String() string      { return "windowPH{" + p.fn.Name + "}" }

// measurePH marks a measure reference together with its collected AT
// modifier chain (in application order). bare reports whether the raw
// reference was a plain column reference (re-exportable through a
// non-aggregating projection — the closure property of §5.4).
type measurePH struct {
	info *plan.MeasureInfo
	rel  *Rel
	mods []ast.AtMod
	bare bool
}

func (p *measurePH) Type() sqltypes.Type { return p.info.ValueType.AsMeasure() }
func (p *measurePH) String() string      { return "measurePH{" + p.info.Name + "}" }

// exprBinder binds one expression within a scope.
type exprBinder struct {
	b     *Binder
	scope *Scope
	// allowAgg permits aggregate function calls (SELECT/HAVING of an
	// aggregate query, and measure formulas).
	allowAgg bool
	// allowWindow permits window functions (SELECT list only).
	allowWindow bool
	// allowMeasures permits measure references.
	allowMeasures bool
	// inAgg is set while binding an aggregate's arguments.
	inAgg bool
	// currentCtx, when non-nil, resolves CURRENT dim (only inside AT
	// modifier expressions).
	currentCtx *core.Context
}

func (eb *exprBinder) bind(e ast.Expr) (plan.Expr, error) {
	switch e := e.(type) {
	case *ast.NumberLit:
		if e.IsInt {
			return &plan.Lit{Val: sqltypes.NewInt(e.Int)}, nil
		}
		return &plan.Lit{Val: sqltypes.NewFloat(e.Float)}, nil
	case *ast.StringLit:
		return &plan.Lit{Val: sqltypes.NewString(e.Val)}, nil
	case *ast.BoolLit:
		return &plan.Lit{Val: sqltypes.NewBool(e.Val)}, nil
	case *ast.NullLit:
		return &plan.Lit{Val: sqltypes.Null(sqltypes.KindUnknown)}, nil
	case *ast.DateLit:
		v, err := sqltypes.ParseDate(e.Val)
		if err != nil {
			return nil, err
		}
		return &plan.Lit{Val: v}, nil

	case *ast.Param:
		if eb.b.params == nil {
			return nil, fmt.Errorf("parameter $%d outside a prepared statement", e.Index)
		}
		if e.Index < 1 || e.Index > len(eb.b.params) {
			return nil, fmt.Errorf("parameter $%d out of range (statement has %d parameters)", e.Index, len(eb.b.params))
		}
		return &plan.Param{Index: e.Index - 1, Typ: sqltypes.Type{Kind: eb.b.params[e.Index-1]}}, nil

	case *ast.Ident:
		return eb.bindIdent(e)

	case *ast.Unary:
		x, err := eb.bind(e.X)
		if err != nil {
			return nil, err
		}
		if e.Op == "NOT" {
			if err := requireBool(x, "NOT operand"); err != nil {
				return nil, err
			}
			return &plan.Not{X: x}, nil
		}
		return eb.call("NEG", []plan.Expr{x})

	case *ast.Binary:
		return eb.bindBinary(e)

	case *ast.IsNull:
		x, err := eb.bind(e.X)
		if err != nil {
			return nil, err
		}
		return &plan.IsNull{X: x, Neg: e.Not}, nil

	case *ast.IsDistinct:
		l, err := eb.bind(e.L)
		if err != nil {
			return nil, err
		}
		r, err := eb.bind(e.R)
		if err != nil {
			return nil, err
		}
		if _, err := sqltypes.CommonType(l.Type().Kind, r.Type().Kind); err != nil {
			return nil, fmt.Errorf("IS DISTINCT FROM: %v", err)
		}
		return &plan.IsDistinct{L: l, R: r, Neg: e.Not}, nil

	case *ast.Between:
		x, err := eb.bind(e.X)
		if err != nil {
			return nil, err
		}
		lo, err := eb.bind(e.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := eb.bind(e.Hi)
		if err != nil {
			return nil, err
		}
		ge, err := eb.call(">=", []plan.Expr{x, lo})
		if err != nil {
			return nil, err
		}
		le, err := eb.call("<=", []plan.Expr{x, hi})
		if err != nil {
			return nil, err
		}
		var out plan.Expr = &plan.And{L: ge, R: le}
		if e.Not {
			out = &plan.Not{X: out}
		}
		return out, nil

	case *ast.InList:
		x, err := eb.bind(e.X)
		if err != nil {
			return nil, err
		}
		list := make([]plan.Expr, len(e.List))
		for i, item := range e.List {
			bi, err := eb.bind(item)
			if err != nil {
				return nil, err
			}
			if _, err := sqltypes.CommonType(x.Type().Kind, bi.Type().Kind); err != nil {
				return nil, fmt.Errorf("IN list item %d: %v", i+1, err)
			}
			list[i] = bi
		}
		return &plan.InList{X: x, List: list, Neg: e.Not}, nil

	case *ast.InSubquery:
		x, err := eb.bind(e.X)
		if err != nil {
			return nil, err
		}
		sub, err := eb.b.bindQuery(e.Query, eb.scope)
		if err != nil {
			return nil, err
		}
		if len(sub.Schema().Cols) != 1 {
			return nil, fmt.Errorf("IN subquery must return exactly one column")
		}
		return &plan.Subquery{
			Plan:  sub,
			Mode:  plan.SubIn,
			Neg:   e.Not,
			Exprs: []plan.Expr{x},
			Typ:   sqltypes.Type{Kind: sqltypes.KindBool},
			Memo:  true,
		}, nil

	case *ast.Exists:
		sub, err := eb.b.bindQuery(e.Query, eb.scope)
		if err != nil {
			return nil, err
		}
		return &plan.Subquery{
			Plan: sub,
			Mode: plan.SubExists,
			Neg:  e.Not,
			Typ:  sqltypes.Type{Kind: sqltypes.KindBool},
			Memo: true,
		}, nil

	case *ast.ScalarSubquery:
		sub, err := eb.b.bindQuery(e.Query, eb.scope)
		if err != nil {
			return nil, err
		}
		if len(sub.Schema().Cols) != 1 {
			return nil, fmt.Errorf("scalar subquery must return exactly one column")
		}
		return &plan.Subquery{
			Plan: sub,
			Mode: plan.SubScalar,
			Typ:  sub.Schema().Cols[0].Typ.Scalar(),
			Memo: true,
		}, nil

	case *ast.Case:
		return eb.bindCase(e)

	case *ast.Cast:
		x, err := eb.bind(e.X)
		if err != nil {
			return nil, err
		}
		kind := sqltypes.KindFromName(e.TypeName)
		if kind == sqltypes.KindUnknown {
			return nil, fmt.Errorf("unknown type %s in CAST", e.TypeName)
		}
		return &plan.Cast{X: x, Kind: kind}, nil

	case *ast.FuncCall:
		return eb.bindFuncCall(e)

	case *ast.At:
		return eb.bindAt(e)

	case *ast.Current:
		// CURRENT dim: the single value the dimension is constrained to in
		// the enclosing evaluation context, else NULL (paper §3.5).
		if eb.currentCtx == nil {
			return nil, fmt.Errorf("CURRENT is only valid inside AT modifier expressions")
		}
		id, ok := e.Dim.(*ast.Ident)
		if !ok {
			return nil, fmt.Errorf("CURRENT requires a dimension name")
		}
		if v := eb.currentCtx.CurrentValue(id.Name()); v != nil {
			return v, nil
		}
		return &plan.Lit{Val: sqltypes.Null(sqltypes.KindUnknown)}, nil

	default:
		return nil, fmt.Errorf("unsupported expression %T", e)
	}
}

func (eb *exprBinder) bindIdent(e *ast.Ident) (plan.Expr, error) {
	if len(e.Parts) > 2 {
		return nil, fmt.Errorf("identifier %s has too many qualifiers", strings.Join(e.Parts, "."))
	}
	res, err := eb.scope.resolve(e.Qualifier(), e.Name())
	if err != nil {
		return nil, err
	}
	if res.col.Measure != nil {
		if !eb.allowMeasures {
			return nil, fmt.Errorf("measure %s cannot be used here", res.col.Name)
		}
		if eb.inAgg {
			return nil, fmt.Errorf("measure %s cannot be an argument of an aggregate function; use AGGREGATE(%s)", res.col.Name, res.col.Name)
		}
		if res.levels > 0 {
			return nil, fmt.Errorf("correlated references to measure %s are not supported", res.col.Name)
		}
		return &measurePH{info: res.col.Measure, rel: res.rel, bare: true}, nil
	}
	if res.col.Typ.Measure {
		return nil, fmt.Errorf("column %s has measure type but lost its definition (e.g. through a set operation) and cannot be used", res.col.Name)
	}
	return res.expr, nil
}

func (eb *exprBinder) bindBinary(e *ast.Binary) (plan.Expr, error) {
	switch e.Op {
	case "AND", "OR":
		l, err := eb.bind(e.L)
		if err != nil {
			return nil, err
		}
		r, err := eb.bind(e.R)
		if err != nil {
			return nil, err
		}
		if err := requireBool(l, e.Op+" operand"); err != nil {
			return nil, err
		}
		if err := requireBool(r, e.Op+" operand"); err != nil {
			return nil, err
		}
		if e.Op == "AND" {
			return &plan.And{L: l, R: r}, nil
		}
		return &plan.Or{L: l, R: r}, nil
	default:
		l, err := eb.bind(e.L)
		if err != nil {
			return nil, err
		}
		r, err := eb.bind(e.R)
		if err != nil {
			return nil, err
		}
		return eb.call(e.Op, []plan.Expr{l, r})
	}
}

// call builds a plan.Call for a registered scalar function, computing the
// result type. Measure-typed arguments are rejected here, which catches
// things like profitMargin + 1 outside an evaluable context.
func (eb *exprBinder) call(name string, args []plan.Expr) (plan.Expr, error) {
	return eb.callAt(name, args, 0)
}

// callAt is call with a source position (byte offset + 1, 0 unknown)
// carried into the plan for runtime error reporting.
func (eb *exprBinder) callAt(name string, args []plan.Expr, pos int) (plan.Expr, error) {
	sc, ok := fn.LookupScalar(name)
	if !ok {
		return nil, fmt.Errorf("unknown function or operator %s", name)
	}
	if len(args) < sc.MinArgs || (sc.MaxArgs >= 0 && len(args) > sc.MaxArgs) {
		return nil, fmt.Errorf("%s: wrong number of arguments (%d)", name, len(args))
	}
	types := make([]sqltypes.Type, len(args))
	for i, a := range args {
		types[i] = a.Type()
	}
	ret, err := sc.Ret(types)
	if err != nil {
		return nil, err
	}
	return &plan.Call{Name: sc.Name, Args: args, Typ: ret, Pos: pos}, nil
}

func (eb *exprBinder) bindCase(e *ast.Case) (plan.Expr, error) {
	// Desugar simple CASE (CASE x WHEN v ...) into searched CASE.
	whens := make([]plan.CaseWhen, 0, len(e.Whens))
	var operand plan.Expr
	var err error
	if e.Operand != nil {
		operand, err = eb.bind(e.Operand)
		if err != nil {
			return nil, err
		}
	}
	resultKind := sqltypes.KindUnknown
	for _, w := range e.Whens {
		var cond plan.Expr
		if operand != nil {
			val, err := eb.bind(w.Cond)
			if err != nil {
				return nil, err
			}
			cond, err = eb.call("=", []plan.Expr{operand, val})
			if err != nil {
				return nil, err
			}
		} else {
			cond, err = eb.bind(w.Cond)
			if err != nil {
				return nil, err
			}
			if err := requireBool(cond, "CASE WHEN condition"); err != nil {
				return nil, err
			}
		}
		then, err := eb.bind(w.Then)
		if err != nil {
			return nil, err
		}
		resultKind, err = sqltypes.CommonType(resultKind, then.Type().Kind)
		if err != nil {
			return nil, fmt.Errorf("CASE branches: %v", err)
		}
		whens = append(whens, plan.CaseWhen{Cond: cond, Then: then})
	}
	var elseExpr plan.Expr
	if e.Else != nil {
		elseExpr, err = eb.bind(e.Else)
		if err != nil {
			return nil, err
		}
		resultKind, err = sqltypes.CommonType(resultKind, elseExpr.Type().Kind)
		if err != nil {
			return nil, fmt.Errorf("CASE branches: %v", err)
		}
	}
	return &plan.Case{Whens: whens, Else: elseExpr, Typ: sqltypes.Type{Kind: resultKind}}, nil
}

func (eb *exprBinder) bindFuncCall(e *ast.FuncCall) (plan.Expr, error) {
	name := strings.ToUpper(e.Name)

	// AGGREGATE(m) ≡ EVAL(m AT (VISIBLE)) — paper §3.5.
	if name == "AGGREGATE" || name == "EVAL" {
		if len(e.Args) != 1 || e.Star || e.Distinct || e.Over != nil || e.Filter != nil {
			return nil, fmt.Errorf("%s takes exactly one measure argument", name)
		}
		inner, err := eb.bind(e.Args[0])
		if err != nil {
			return nil, err
		}
		ph, ok := inner.(*measurePH)
		if !ok {
			return nil, fmt.Errorf("%s requires a measure argument, got type %s", name, inner.Type())
		}
		ph.bare = false
		if name == "AGGREGATE" {
			if len(ph.mods) > 0 {
				return nil, fmt.Errorf("AGGREGATE takes a plain measure; combine AT with EVAL instead")
			}
			ph.mods = []ast.AtMod{&ast.AtVisible{}}
		}
		return ph, nil
	}

	// Window functions: OVER present, or window-only function names.
	if e.Over != nil || fn.IsWindowOnly(name) {
		return eb.bindWindowCall(e, name)
	}

	if agg, ok := fn.LookupAgg(name); ok {
		return eb.bindAggCall(e, agg)
	}

	if name == "GROUPING" {
		return eb.bindGrouping(e)
	}
	if name == "GROUPING_ID" {
		// GROUPING_ID(e1..en) desugars to the bit vector
		// GROUPING(e1)*2^(n-1) + ... + GROUPING(en), used by §5.3-style
		// measures that pick a formula per aggregation level.
		if !eb.allowAgg {
			return nil, fmt.Errorf("GROUPING_ID is only valid in an aggregate query")
		}
		if len(e.Args) == 0 {
			return nil, fmt.Errorf("GROUPING_ID requires at least one argument")
		}
		var out plan.Expr
		for i, arg := range e.Args {
			g, err := eb.bindGrouping(&ast.FuncCall{Name: "GROUPING", Args: []ast.Expr{arg}})
			if err != nil {
				return nil, err
			}
			weight := int64(1) << (len(e.Args) - 1 - i)
			term := plan.Expr(&plan.Call{
				Name: "*",
				Args: []plan.Expr{g, &plan.Lit{Val: sqltypes.NewInt(weight)}},
				Typ:  sqltypes.Type{Kind: sqltypes.KindInt},
			})
			if out == nil {
				out = term
			} else {
				out = &plan.Call{Name: "+", Args: []plan.Expr{out, term}, Typ: sqltypes.Type{Kind: sqltypes.KindInt}}
			}
		}
		return out, nil
	}

	if e.Star || e.Distinct {
		return nil, fmt.Errorf("%s is not an aggregate function", name)
	}
	args := make([]plan.Expr, len(e.Args))
	for i, a := range e.Args {
		bound, err := eb.bind(a)
		if err != nil {
			return nil, err
		}
		args[i] = bound
	}
	if e.Filter != nil {
		return nil, fmt.Errorf("FILTER is only valid on aggregate functions")
	}
	return eb.callAt(name, args, e.Pos+1)
}

func (eb *exprBinder) bindAggCall(e *ast.FuncCall, agg *fn.Agg) (plan.Expr, error) {
	if !eb.allowAgg {
		return nil, fmt.Errorf("aggregate function %s is not allowed here", agg.Name)
	}
	if eb.inAgg {
		return nil, fmt.Errorf("aggregate functions cannot be nested")
	}
	if err := fn.CheckAggArity(agg, len(e.Args), e.Star); err != nil {
		return nil, err
	}
	inner := *eb
	inner.inAgg = true
	inner.allowWindow = false
	args := make([]plan.Expr, len(e.Args))
	types := make([]sqltypes.Type, len(e.Args))
	for i, a := range e.Args {
		bound, err := inner.bind(a)
		if err != nil {
			return nil, err
		}
		args[i] = bound
		types[i] = bound.Type()
	}
	var filter plan.Expr
	if e.Filter != nil {
		f, err := inner.bind(e.Filter)
		if err != nil {
			return nil, err
		}
		if err := requireBool(f, "FILTER condition"); err != nil {
			return nil, err
		}
		filter = f
	}
	var within []plan.Expr
	if len(e.WithinDistinct) > 0 {
		if e.Distinct {
			return nil, fmt.Errorf("%s: DISTINCT and WITHIN DISTINCT cannot be combined", agg.Name)
		}
		for _, k := range e.WithinDistinct {
			bk, err := inner.bind(k)
			if err != nil {
				return nil, err
			}
			within = append(within, bk)
		}
	}
	ret, err := agg.Ret(types)
	if err != nil {
		return nil, err
	}
	return &aggPH{call: plan.AggCall{
		Name:           agg.Name,
		Args:           args,
		Star:           e.Star,
		Distinct:       e.Distinct,
		Filter:         filter,
		WithinDistinct: within,
		KeyIndex:       -1,
		Typ:            ret,
	}}, nil
}

func (eb *exprBinder) bindGrouping(e *ast.FuncCall) (plan.Expr, error) {
	if !eb.allowAgg {
		return nil, fmt.Errorf("GROUPING is only valid in an aggregate query")
	}
	if len(e.Args) != 1 {
		return nil, fmt.Errorf("GROUPING takes exactly one argument")
	}
	arg, err := eb.bind(e.Args[0])
	if err != nil {
		return nil, err
	}
	// KeyIndex is resolved by the aggregate rewrite, which matches Args[0]
	// against the group expressions.
	return &aggPH{call: plan.AggCall{
		Name:     "GROUPING",
		Args:     []plan.Expr{arg},
		KeyIndex: -1,
		Typ:      sqltypes.Type{Kind: sqltypes.KindInt},
	}}, nil
}

func (eb *exprBinder) bindWindowCall(e *ast.FuncCall, name string) (plan.Expr, error) {
	if !eb.allowWindow {
		return nil, fmt.Errorf("window function %s is only allowed in the SELECT list", name)
	}
	if e.Over == nil {
		return nil, fmt.Errorf("%s requires an OVER clause", name)
	}
	if e.Distinct {
		return nil, fmt.Errorf("DISTINCT is not supported in window functions")
	}
	inner := *eb
	inner.allowWindow = false
	inner.allowAgg = false
	args := make([]plan.Expr, len(e.Args))
	types := make([]sqltypes.Type, len(e.Args))
	for i, a := range e.Args {
		bound, err := inner.bind(a)
		if err != nil {
			return nil, err
		}
		args[i] = bound
		types[i] = bound.Type()
	}
	var ret sqltypes.Type
	if fn.IsWindowOnly(name) {
		r, err := fn.WindowRet(name, types)
		if err != nil {
			return nil, err
		}
		ret = r
	} else if agg, ok := fn.LookupAgg(name); ok {
		if err := fn.CheckAggArity(agg, len(e.Args), e.Star); err != nil {
			return nil, err
		}
		r, err := agg.Ret(types)
		if err != nil {
			return nil, err
		}
		ret = r
	} else {
		return nil, fmt.Errorf("%s is not a window or aggregate function", name)
	}

	wf := plan.WindowFunc{Name: name, Args: args, Star: e.Star, Typ: ret}
	for _, pb := range e.Over.PartitionBy {
		bound, err := inner.bind(pb)
		if err != nil {
			return nil, err
		}
		wf.PartitionBy = append(wf.PartitionBy, bound)
	}
	for _, ob := range e.Over.OrderBy {
		bound, err := inner.bind(ob.Expr)
		if err != nil {
			return nil, err
		}
		wf.OrderBy = append(wf.OrderBy, plan.SortItem{Expr: bound, Desc: ob.Desc, NullsFirst: nullsFirst(ob)})
	}
	// Frames: the default running frame applies when ORDER BY is present;
	// explicit frames other than the two defaults are not supported.
	if e.Over.Frame != nil {
		f := e.Over.Frame
		switch {
		case f.Start.Kind == ast.UnboundedPreceding && f.End.Kind == ast.CurrentRow:
			wf.Running = len(wf.OrderBy) > 0
		case f.Start.Kind == ast.UnboundedPreceding && f.End.Kind == ast.UnboundedFollowing:
			wf.Running = false
		default:
			return nil, fmt.Errorf("only UNBOUNDED PRECEDING frames are supported")
		}
	} else {
		wf.Running = len(wf.OrderBy) > 0
	}
	return &windowPH{fn: wf}, nil
}

// bindAt collects the AT modifier chain onto the measure placeholder.
// Nested applications compose per the paper's rule cse AT (m1 m2) ≡
// (cse AT (m2)) AT (m1): outer modifiers apply first, and within one AT
// the modifiers apply left to right.
func (eb *exprBinder) bindAt(e *ast.At) (plan.Expr, error) {
	inner, err := eb.bind(e.X)
	if err != nil {
		return nil, err
	}
	ph, ok := inner.(*measurePH)
	if !ok {
		return nil, fmt.Errorf("AT can only be applied to a measure (a context-sensitive expression), got type %s", inner.Type())
	}
	ph.bare = false
	ph.mods = append(append([]ast.AtMod{}, e.Mods...), ph.mods...)
	return ph, nil
}

// findMeasurePH reports whether a bound expression still contains measure
// placeholders.
func findMeasurePH(e plan.Expr) *measurePH {
	var found *measurePH
	plan.WalkExprs(e, func(x plan.Expr) {
		if ph, ok := x.(*measurePH); ok && found == nil {
			found = ph
		}
	})
	return found
}
