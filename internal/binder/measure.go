package binder

import (
	"fmt"
	"strings"

	"github.com/measures-sql/msql/internal/ast"
	"github.com/measures-sql/msql/internal/core"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// This file drives the paper's measure semantics: definitions
// (AS MEASURE → plan.MeasureInfo), re-export through non-aggregating
// projections (closure, §5.4), and expansion of measure uses into
// correlated scalar subqueries whose WHERE clause is the reified
// evaluation context (§4.2), at both aggregate and row call sites.

// dimMapping returns a substitution from FROM-row column references
// within rel to expressions over the measure's base row. Columns outside
// rel, measure columns, and non-derivable dimensions map to (nil, false).
func dimMapping(rel *Rel, info *plan.MeasureInfo) func(*plan.ColRef) (plan.Expr, bool) {
	m := map[int]plan.Expr{}
	k := 0
	for ci, col := range rel.Cols {
		if col.Measure != nil || col.Typ.Measure {
			continue
		}
		if k >= len(info.Dims) {
			break
		}
		if e := info.Dims[k].Expr; e != nil {
			m[rel.Offset+ci] = e
		}
		k++
	}
	return func(c *plan.ColRef) (plan.Expr, bool) {
		e, ok := m[c.Index]
		return e, ok
	}
}

// mapWholeExpr rewrites e over the base row using mapping; ok is false if
// any column fails to map or the expression contains constructs that
// cannot move into the measure subquery (correlations, subqueries,
// placeholders, aggregate references).
func mapWholeExpr(e plan.Expr, mapping func(*plan.ColRef) (plan.Expr, bool)) (plan.Expr, bool) {
	ok := true
	out := plan.TransformExpr(e, func(x plan.Expr) plan.Expr {
		switch x := x.(type) {
		case *plan.ColRef:
			if mapped, found := mapping(x); found {
				return mapped
			}
			ok = false
		case *plan.CorrRef, *plan.Subquery, *plan.AggRef, *aggPH, *measurePH, *windowPH:
			ok = false
		}
		return x
	})
	if !ok {
		return nil, false
	}
	return out, true
}

func validateModExpr(e plan.Expr, what string) error {
	var err error
	plan.WalkExprs(e, func(x plan.Expr) {
		switch x.(type) {
		case *plan.Subquery:
			err = fmt.Errorf("subqueries are not supported in %s", what)
		case *aggPH, *measurePH, *windowPH, *plan.AggRef:
			err = fmt.Errorf("aggregates and measures are not supported in %s", what)
		}
	})
	return err
}

func dimNameOf(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name()
	}
	return ast.FormatExpr(e)
}

// ---------------------------------------------------------------------------
// Aggregate call site

// expandAggSite expands a measure reference appearing above an Aggregate:
// the default evaluation context binds every grouping expression that is
// derivable from the measure's dimensions to the current group's value
// (disabled on ROLLUP super-aggregate rows via GROUPING guards); group
// keys that are not derivable link the base table to the group through
// the visible joined rows. AT modifiers then transform the context.
func (ab *aggBinder) expandAggSite(ph *measurePH) (plan.Expr, error) {
	info := ph.info
	mapping := dimMapping(ph.rel, info)
	if e, ok := ab.tryInline(ph, mapping); ok {
		return e, nil
	}
	ctx := &core.Context{}
	needLink := false
	for j, g := range ab.groupExprs {
		mapped, ok := mapWholeExpr(g, mapping)
		if !ok {
			needLink = true
			continue
		}
		ctx.Terms = append(ctx.Terms, core.Term{
			Kind:     core.TermDimEq,
			Dim:      ab.groupNames[j],
			BaseExpr: mapped,
			Value:    &plan.CorrRef{Levels: 1, Index: j, Name: ab.groupNames[j], Typ: g.Type()},
			Grouping: ab.groupingGuard(j),
		})
	}
	linkAdded := false
	if needLink {
		if err := ab.addLink(ctx, ph); err != nil {
			return nil, err
		}
		linkAdded = true
	}
	for _, mod := range ph.mods {
		if err := ab.applyAggMod(ctx, mod, ph, &linkAdded); err != nil {
			return nil, err
		}
	}
	return core.BuildMeasureSubquery(info, ctx)
}

func (ab *aggBinder) applyAggMod(ctx *core.Context, mod ast.AtMod, ph *measurePH, linkAdded *bool) error {
	switch m := mod.(type) {
	case *ast.AtAll:
		if len(m.Dims) == 0 {
			ctx.Clear()
			return nil
		}
		for _, d := range m.Dims {
			name := dimNameOf(d)
			removed := ctx.RemoveDim(name)
			if !removed {
				if _, ok := ph.info.DimByName(name); !ok && !ab.hasGroupName(name) {
					return fmt.Errorf("ALL %s: unknown dimension of measure %s", name, ph.info.Name)
				}
			}
		}
		return nil

	case *ast.AtSet:
		name := dimNameOf(m.Dim)
		baseExpr, err := ab.dimBaseExpr(name, ctx, ph)
		if err != nil {
			return err
		}
		value, err := ab.bindModValue(m.Value, ctx)
		if err != nil {
			return fmt.Errorf("SET %s: %w", name, err)
		}
		ctx.SetDim(name, baseExpr, value)
		return nil

	case *ast.AtVisible:
		ab.applyVisible(ctx, ph, linkAdded)
		return nil

	case *ast.AtWhere:
		pred, err := ab.bindModWhere(m.Pred, ph, ctx)
		if err != nil {
			return err
		}
		ctx.ReplaceWith(pred)
		return nil

	default:
		return fmt.Errorf("unsupported AT modifier %T", mod)
	}
}

// dimBaseExpr finds the base-row expression for a dimension named in a
// SET modifier: an existing context term's expression, a dimension of
// the measure's table, or an ad hoc dimension (a grouping expression's
// alias).
func (ab *aggBinder) dimBaseExpr(name string, ctx *core.Context, ph *measurePH) (plan.Expr, error) {
	for _, t := range ctx.Terms {
		if t.Kind == core.TermDimEq && strings.EqualFold(t.Dim, name) && t.BaseExpr != nil {
			return t.BaseExpr, nil
		}
	}
	if d, ok := ph.info.DimByName(name); ok {
		if d.Expr == nil {
			return nil, fmt.Errorf("dimension %s is not derivable from the base table of measure %s", name, ph.info.Name)
		}
		return d.Expr, nil
	}
	mapping := dimMapping(ph.rel, ph.info)
	for j, g := range ab.groupExprs {
		if strings.EqualFold(ab.groupNames[j], name) {
			if mapped, ok := mapWholeExpr(g, mapping); ok {
				return mapped, nil
			}
		}
	}
	return nil, fmt.Errorf("unknown dimension %s of measure %s", name, ph.info.Name)
}

func (ab *aggBinder) hasGroupName(name string) bool {
	for _, n := range ab.groupNames {
		if strings.EqualFold(n, name) {
			return true
		}
	}
	return false
}

// callScope is the synthetic frame seen by AT modifier expressions at an
// aggregate call site: the group keys, matching any table qualifier.
func (ab *aggBinder) callScope() *Scope {
	cols := make([]plan.Col, ab.nKeys())
	for j := range cols {
		name := ab.groupNames[j]
		if name == "" {
			name = fmt.Sprintf("key%d", j)
		}
		cols[j] = plan.Col{Name: name, Typ: ab.groupExprs[j].Type()}
	}
	var parent *Scope
	if ab.fr.scope != nil {
		parent = ab.fr.scope.parent
	}
	return &Scope{parent: parent, rels: []*Rel{{Cols: cols, AnyAlias: true}}}
}

// bindModValue binds the value expression of a SET modifier. Identifiers
// resolve against the call-site row (group keys) one frame up, so the
// resulting expression is already correct inside the measure subquery;
// CURRENT resolves against the context being built.
func (ab *aggBinder) bindModValue(e ast.Expr, ctx *core.Context) (plan.Expr, error) {
	scope := &Scope{parent: ab.callScope()}
	eb := &exprBinder{b: ab.b, scope: scope, currentCtx: ctx}
	v, err := eb.bind(e)
	if err != nil {
		return nil, err
	}
	if err := validateModExpr(v, "AT modifier expressions"); err != nil {
		return nil, err
	}
	return v, nil
}

// bindModWhere binds an AT (WHERE ...) predicate: unqualified names
// resolve first against the measure's dimensions (as base-row
// expressions), then against the call-site row.
func (ab *aggBinder) bindModWhere(pred ast.Expr, ph *measurePH, ctx *core.Context) (plan.Expr, error) {
	dimFrame := &Scope{parent: ab.callScope(), rels: []*Rel{dimRel(ph.info)}}
	eb := &exprBinder{b: ab.b, scope: dimFrame, currentCtx: ctx}
	p, err := eb.bind(pred)
	if err != nil {
		return nil, fmt.Errorf("in AT (WHERE ...): %w", err)
	}
	if err := requireBool(p, "AT (WHERE ...) predicate"); err != nil {
		return nil, err
	}
	if err := validateModExpr(p, "AT (WHERE ...) predicates"); err != nil {
		return nil, err
	}
	return p, nil
}

func dimRel(info *plan.MeasureInfo) *Rel {
	cols := make([]plan.Col, len(info.Dims))
	exprs := make([]plan.Expr, len(info.Dims))
	for i, d := range info.Dims {
		typ := sqltypes.Type{Kind: sqltypes.KindUnknown}
		if d.Expr != nil {
			typ = d.Expr.Type()
		}
		cols[i] = plan.Col{Name: d.Name, Typ: typ}
		exprs[i] = d.Expr
	}
	return &Rel{Cols: cols, Exprs: exprs}
}

// applyVisible implements the VISIBLE modifier at an aggregate site: it
// adds the query's WHERE conjuncts that are expressible over the
// measure's dimensions, and — under joins or for inexpressible conjuncts
// — links the base table to the rows actually visible in the current
// group (paper §3.5, §3.6).
func (ab *aggBinder) applyVisible(ctx *core.Context, ph *measurePH, linkAdded *bool) {
	mapping := dimMapping(ph.rel, ph.info)
	unmapped := false
	if ab.whereExpr != nil {
		for _, c := range splitConjuncts(ab.whereExpr) {
			if mc, ok := mapWholeExpr(c, mapping); ok {
				ctx.AddPred(mc)
			} else {
				unmapped = true
			}
		}
	}
	if (ab.fr.hasJoin || unmapped) && !*linkAdded {
		// Best effort: if no dimension is derivable the link is
		// impossible, but in that case the measure likely fails
		// elsewhere too; AddLink errors are surfaced there.
		if err := ab.addLink(ctx, ph); err == nil {
			*linkAdded = true
		}
	}
}

// addLink appends a semijoin term: the measure's dimension tuple must
// appear among the current group's visible rows. The set plan reuses the
// query's filtered FROM tree and matches the group keys at correlation
// level 2 (it runs inside the measure subquery's filter).
func (ab *aggBinder) addLink(ctx *core.Context, ph *measurePH) error {
	info := ph.info
	var baseExprs []plan.Expr
	var proj []plan.NamedExpr
	k := 0
	for ci, col := range ph.rel.Cols {
		if col.Measure != nil || col.Typ.Measure {
			continue
		}
		if k >= len(info.Dims) {
			break
		}
		d := info.Dims[k]
		k++
		if d.Expr == nil {
			continue
		}
		baseExprs = append(baseExprs, d.Expr)
		proj = append(proj, plan.NamedExpr{
			Expr: &plan.ColRef{Index: ph.rel.Offset + ci, Name: col.Name, Typ: col.Typ},
			Col:  plan.Col{Name: col.Name, Typ: col.Typ},
		})
	}
	if len(baseExprs) == 0 {
		return fmt.Errorf("measure %s cannot be linked to this query: none of its dimensions are derivable", info.Name)
	}

	var match plan.Expr
	for j, g := range ab.groupExprs {
		eq := plan.Expr(&plan.IsDistinct{
			L:   g,
			R:   &plan.CorrRef{Levels: 2, Index: j, Name: ab.groupNames[j], Typ: g.Type()},
			Neg: true,
		})
		if ab.multiSets() {
			gi := ab.groupingAgg(j)
			eq = &plan.Or{
				L: &plan.Call{
					Name: "<>",
					Args: []plan.Expr{
						&plan.CorrRef{Levels: 2, Index: ab.aggOut(gi), Name: "grouping", Typ: sqltypes.Type{Kind: sqltypes.KindInt}},
						&plan.Lit{Val: sqltypes.NewInt(0)},
					},
					Typ: sqltypes.Type{Kind: sqltypes.KindBool},
				},
				R: eq,
			}
		}
		if match == nil {
			match = eq
		} else {
			match = &plan.And{L: match, R: eq}
		}
	}

	setInput := ab.input
	if match != nil {
		setInput = &plan.Filter{Input: setInput, Pred: match}
	}
	sch := &plan.Schema{Cols: make([]plan.Col, len(proj))}
	for i, ne := range proj {
		sch.Cols[i] = ne.Col
	}
	setPlan := &plan.Project{Input: setInput, Exprs: proj, Sch: sch}
	ctx.AddLink(baseExprs, setPlan)
	return nil
}

// ---------------------------------------------------------------------------
// Row call site

// expandRowSite replaces every measure placeholder in e with its row-
// context expansion: by default all dimensions are bound to the current
// row's values (paper Listing 12 query 4 then overrides with AT WHERE).
func (b *Binder) expandRowSite(e plan.Expr, fr *fromResult, whereExpr plan.Expr) (plan.Expr, error) {
	if findMeasurePH(e) == nil {
		return e, nil
	}
	var err error
	out := plan.TransformExpr(e, func(x plan.Expr) plan.Expr {
		if ph, ok := x.(*measurePH); ok && err == nil {
			var ex plan.Expr
			ex, err = b.expandRowSitePH(ph, fr, whereExpr)
			if err == nil {
				return ex
			}
		}
		return x
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (b *Binder) expandRowSitePH(ph *measurePH, fr *fromResult, whereExpr plan.Expr) (plan.Expr, error) {
	info := ph.info
	ctx := &core.Context{}
	k := 0
	for ci, col := range ph.rel.Cols {
		if col.Measure != nil || col.Typ.Measure {
			continue
		}
		if k >= len(info.Dims) {
			break
		}
		d := info.Dims[k]
		k++
		ctx.Terms = append(ctx.Terms, core.Term{
			Kind:     core.TermDimEq,
			Dim:      d.Name,
			BaseExpr: d.Expr,
			Value:    &plan.CorrRef{Levels: 1, Index: ph.rel.Offset + ci, Name: col.Name, Typ: col.Typ},
		})
	}
	for _, mod := range ph.mods {
		if err := b.applyRowMod(ctx, mod, ph, fr, whereExpr); err != nil {
			return nil, err
		}
	}
	return core.BuildMeasureSubquery(info, ctx)
}

func (b *Binder) applyRowMod(ctx *core.Context, mod ast.AtMod, ph *measurePH, fr *fromResult, whereExpr plan.Expr) error {
	switch m := mod.(type) {
	case *ast.AtAll:
		if len(m.Dims) == 0 {
			ctx.Clear()
			return nil
		}
		for _, d := range m.Dims {
			name := dimNameOf(d)
			if !ctx.RemoveDim(name) {
				if _, ok := ph.info.DimByName(name); !ok {
					return fmt.Errorf("ALL %s: unknown dimension of measure %s", name, ph.info.Name)
				}
			}
		}
		return nil

	case *ast.AtSet:
		name := dimNameOf(m.Dim)
		var baseExpr plan.Expr
		if d, ok := ph.info.DimByName(name); ok {
			baseExpr = d.Expr
		}
		if baseExpr == nil {
			return fmt.Errorf("SET %s: unknown or non-derivable dimension of measure %s", name, ph.info.Name)
		}
		scope := &Scope{parent: fr.scope}
		eb := &exprBinder{b: b, scope: scope, currentCtx: ctx}
		value, err := eb.bind(m.Value)
		if err != nil {
			return fmt.Errorf("SET %s: %w", name, err)
		}
		if err := validateModExpr(value, "AT modifier expressions"); err != nil {
			return err
		}
		ctx.SetDim(name, baseExpr, value)
		return nil

	case *ast.AtVisible:
		if whereExpr == nil {
			return nil
		}
		mapping := dimMapping(ph.rel, ph.info)
		for _, c := range splitConjuncts(whereExpr) {
			mc, ok := mapWholeExpr(c, mapping)
			if !ok {
				return fmt.Errorf("VISIBLE: the WHERE clause is not expressible over the dimensions of measure %s", ph.info.Name)
			}
			ctx.AddPred(mc)
		}
		return nil

	case *ast.AtWhere:
		dimFrame := &Scope{parent: fr.scope, rels: []*Rel{dimRel(ph.info)}}
		eb := &exprBinder{b: b, scope: dimFrame, currentCtx: ctx}
		p, err := eb.bind(m.Pred)
		if err != nil {
			return fmt.Errorf("in AT (WHERE ...): %w", err)
		}
		if err := requireBool(p, "AT (WHERE ...) predicate"); err != nil {
			return err
		}
		if err := validateModExpr(p, "AT (WHERE ...) predicates"); err != nil {
			return err
		}
		ctx.ReplaceWith(p)
		return nil

	default:
		return fmt.Errorf("unsupported AT modifier %T", mod)
	}
}

// ---------------------------------------------------------------------------
// Definitions and re-export

// defineMeasure binds an AS MEASURE select item into MeasureInfo. The
// formula may reference sibling measures in the same SELECT (substituted
// at the AST level) and measures of the input table (composed through
// the shared base relation, paper §5.4).
func (b *Binder) defineMeasure(item *selItem, items []*selItem, fr *fromResult, whereExpr plan.Expr) (*plan.MeasureInfo, error) {
	astExpr, err := substituteSiblings(item, items)
	if err != nil {
		return nil, err
	}
	eb := &exprBinder{b: b, scope: fr.scope, allowAgg: true, allowMeasures: true}
	raw, err := eb.bind(astExpr)
	if err != nil {
		return nil, err
	}

	var phs []*measurePH
	plan.WalkExprs(raw, func(x plan.Expr) {
		if ph, ok := x.(*measurePH); ok {
			phs = append(phs, ph)
		}
	})

	if len(phs) > 0 {
		return b.defineComposedMeasure(item, items, fr, whereExpr, raw, phs)
	}

	base := fr.node
	if whereExpr != nil {
		base = &plan.Filter{Input: base, Pred: whereExpr}
	}
	var aggs []plan.AggCall
	formula := plan.TransformExpr(raw, func(x plan.Expr) plan.Expr {
		if ph, ok := x.(*aggPH); ok {
			aggs = append(aggs, ph.call)
			return &plan.AggRef{Index: len(aggs) - 1, Typ: ph.call.Typ}
		}
		return x
	})
	if err := validateFormula(formula, item.alias); err != nil {
		return nil, err
	}
	return &plan.MeasureInfo{
		Name:      item.alias,
		ValueType: formula.Type().Scalar(),
		Base:      base,
		Formula:   formula,
		Aggs:      aggs,
		Dims:      measureDims(items, nil),
	}, nil
}

// defineComposedMeasure handles formulas that reference measures of the
// input table: the new measure shares the input measures' base relation,
// with this query's WHERE composed in through the dimension mapping.
func (b *Binder) defineComposedMeasure(item *selItem, items []*selItem, fr *fromResult, whereExpr plan.Expr, raw plan.Expr, phs []*measurePH) (*plan.MeasureInfo, error) {
	rel := phs[0].rel
	inputBase := phs[0].info.Base
	for _, ph := range phs {
		if ph.rel != rel || ph.info.Base != inputBase {
			return nil, fmt.Errorf("a measure formula may only combine measures sharing the same base table")
		}
		if len(ph.mods) > 0 {
			return nil, fmt.Errorf("AT and AGGREGATE are not supported inside measure definitions")
		}
	}
	mapping := dimMapping(rel, phs[0].info)

	base := inputBase
	if whereExpr != nil {
		mw, ok := mapWholeExpr(whereExpr, mapping)
		if !ok {
			return nil, fmt.Errorf("the WHERE clause cannot be composed into measure %s (it is not expressible over the input measure's dimensions)", item.alias)
		}
		base = &plan.Filter{Input: base, Pred: mw}
	}

	var aggs []plan.AggCall
	var xform func(plan.Expr) plan.Expr
	var xerr error
	xform = func(x plan.Expr) plan.Expr {
		switch x := x.(type) {
		case *aggPH:
			call := x.call
			args := make([]plan.Expr, len(call.Args))
			for i, a := range call.Args {
				mapped, ok := mapWholeExpr(a, mapping)
				if !ok && xerr == nil {
					xerr = fmt.Errorf("aggregate argument is not expressible over the input measure's base table")
				}
				args[i] = mapped
			}
			call.Args = args
			if call.Filter != nil {
				mf, ok := mapWholeExpr(call.Filter, mapping)
				if !ok && xerr == nil {
					xerr = fmt.Errorf("FILTER clause is not expressible over the input measure's base table")
				}
				call.Filter = mf
			}
			aggs = append(aggs, call)
			return &plan.AggRef{Index: len(aggs) - 1, Typ: call.Typ}
		case *measurePH:
			offset := len(aggs)
			aggs = append(aggs, x.info.Aggs...)
			return plan.ReplaceAggRefs(x.info.Formula, func(ar *plan.AggRef) plan.Expr {
				return &plan.AggRef{Index: ar.Index + offset, Typ: ar.Typ}
			})
		default:
			return x
		}
	}
	formula := plan.TransformExpr(raw, xform)
	if xerr != nil {
		return nil, xerr
	}
	if err := validateFormula(formula, item.alias); err != nil {
		return nil, err
	}
	return &plan.MeasureInfo{
		Name:      item.alias,
		ValueType: formula.Type().Scalar(),
		Base:      base,
		Formula:   formula,
		Aggs:      aggs,
		Dims:      measureDims(items, mapping),
	}, nil
}

// measureDims builds the dimension list from the select's non-measure
// items: name, and the bound expression (optionally remapped to the base
// row). Dimensions that cannot be expressed over the base become
// non-derivable (Expr nil) and fail only if a context later constrains
// them.
func measureDims(items []*selItem, mapping func(*plan.ColRef) (plan.Expr, bool)) []plan.Dim {
	var dims []plan.Dim
	for _, it := range items {
		if it.measureDef {
			continue
		}
		if _, isMeas := it.raw.(*measurePH); isMeas {
			continue
		}
		expr := it.raw
		if expr != nil && mapping != nil {
			if mapped, ok := mapWholeExpr(expr, mapping); ok {
				expr = mapped
			} else {
				expr = nil
			}
		}
		if expr != nil {
			if bad := validateModExpr(expr, ""); bad != nil {
				expr = nil
			}
		}
		dims = append(dims, plan.Dim{Name: it.alias, Expr: expr})
	}
	return dims
}

func validateFormula(formula plan.Expr, name string) error {
	var err error
	plan.WalkExprs(formula, func(x plan.Expr) {
		switch x.(type) {
		case *plan.ColRef:
			if err == nil {
				err = fmt.Errorf("measure %s: every column in a measure formula must be inside an aggregate function (measures must be aggregatable, paper §3.2)", name)
			}
		case *plan.CorrRef:
			if err == nil {
				err = fmt.Errorf("measure %s: correlated references are not allowed in measure formulas", name)
			}
		case *windowPH:
			if err == nil {
				err = fmt.Errorf("measure %s: window functions are not allowed in measure formulas", name)
			}
		case *plan.Subquery:
			if err == nil {
				err = fmt.Errorf("measure %s: subqueries are not allowed in measure formulas", name)
			}
		}
	})
	return err
}

// substituteSiblings inlines references to other AS MEASURE aliases of
// the same SELECT into the formula (composability, §5.4), rejecting
// cycles (the paper excludes recursive measures).
func substituteSiblings(item *selItem, items []*selItem) (ast.Expr, error) {
	siblings := map[string]ast.Expr{}
	for _, it := range items {
		if it.measureDef {
			// The item itself is included so that self-references are
			// caught by the cycle check below rather than misbinding.
			siblings[strings.ToLower(it.alias)] = it.astExpr
		}
	}
	var subst func(e ast.Expr, depth int, active map[string]bool) (ast.Expr, error)
	subst = func(e ast.Expr, depth int, active map[string]bool) (ast.Expr, error) {
		if depth > 32 {
			return nil, fmt.Errorf("measure definitions nest too deeply")
		}
		var serr error
		out := ast.TransformExpr(e, func(x ast.Expr) ast.Expr {
			id, ok := x.(*ast.Ident)
			if !ok || id.Qualifier() != "" || serr != nil {
				return x
			}
			key := strings.ToLower(id.Name())
			formula, isSibling := siblings[key]
			if !isSibling {
				return x
			}
			if active[key] {
				serr = fmt.Errorf("recursive measures are not supported (cycle through %s)", id.Name())
				return x
			}
			active[key] = true
			inner, err := subst(formula, depth+1, active)
			delete(active, key)
			if err != nil {
				serr = err
				return x
			}
			return inner
		})
		if serr != nil {
			return nil, serr
		}
		return out, nil
	}
	return subst(item.astExpr, 0, map[string]bool{strings.ToLower(item.alias): true})
}

// reexportMeasure adjusts a measure's metadata when a non-aggregating
// query projects it through: the query's WHERE is baked into the base
// relation (and "cannot be subverted", §3.5) and the dimensionality
// becomes the projected non-measure columns (§5.4).
func (b *Binder) reexportMeasure(ph *measurePH, alias string, items []*selItem, fr *fromResult, whereExpr plan.Expr) (*plan.MeasureInfo, error) {
	if fr.hasJoin {
		return nil, fmt.Errorf("cannot project measure %s through a join without aggregating; use AGGREGATE or AT", ph.info.Name)
	}
	mapping := dimMapping(ph.rel, ph.info)
	base := ph.info.Base
	if whereExpr != nil {
		mw, ok := mapWholeExpr(whereExpr, mapping)
		if !ok {
			return nil, fmt.Errorf("the WHERE clause cannot be baked into re-exported measure %s", ph.info.Name)
		}
		base = &plan.Filter{Input: base, Pred: mw}
	}
	return &plan.MeasureInfo{
		Name:      alias,
		ValueType: ph.info.ValueType,
		Base:      base,
		Formula:   ph.info.Formula,
		Aggs:      ph.info.Aggs,
		Dims:      measureDims(items, mapping),
	}, nil
}

// ---------------------------------------------------------------------------
// Inlining (paper §6.4)

// tryInline replaces a measure reference with plain aggregate calls on
// the enclosing Aggregate when that is provably equivalent: single
// grouping set, no join, every group key derivable from the measure's
// dimensions, the modifier chain is empty (requiring no query WHERE,
// since a bare measure ignores it) or exactly VISIBLE with every WHERE
// conjunct expressible over the dimensions, and the formula's aggregate
// arguments can be rewritten from the base row onto the FROM row. Under
// those conditions the measure's evaluation context is exactly the group
// partition, so no subquery is needed — this is the plan shape a
// measure-less SQL author would have written by hand.
func (ab *aggBinder) tryInline(ph *measurePH, mapping func(*plan.ColRef) (plan.Expr, bool)) (plan.Expr, bool) {
	if !ab.b.inline || ab.multiSets() || ab.fr.hasJoin {
		return nil, false
	}
	info := ph.info
	switch len(ph.mods) {
	case 0:
		if ab.whereExpr != nil {
			// A bare measure ignores the WHERE clause but the group
			// partition does not; only VISIBLE matches the partition.
			return nil, false
		}
	case 1:
		if _, ok := ph.mods[0].(*ast.AtVisible); !ok {
			return nil, false
		}
		if ab.whereExpr != nil {
			for _, c := range splitConjuncts(ab.whereExpr) {
				if _, ok := mapWholeExpr(c, mapping); !ok {
					return nil, false
				}
			}
		}
	default:
		return nil, false
	}
	for _, g := range ab.groupExprs {
		if _, ok := mapWholeExpr(g, mapping); !ok {
			return nil, false
		}
	}

	// Inverse mapping: base column index -> FROM row index, available
	// when the dimension is a bare base column.
	inv := map[int]int{}
	k := 0
	for ci, col := range ph.rel.Cols {
		if col.Measure != nil || col.Typ.Measure {
			continue
		}
		if k >= len(info.Dims) {
			break
		}
		d := info.Dims[k]
		k++
		if cr, ok := d.Expr.(*plan.ColRef); ok {
			if _, exists := inv[cr.Index]; !exists {
				inv[cr.Index] = ph.rel.Offset + ci
			}
		}
	}
	invMap := func(e plan.Expr) (plan.Expr, bool) {
		ok := true
		out := plan.TransformExpr(e, func(x plan.Expr) plan.Expr {
			switch x := x.(type) {
			case *plan.ColRef:
				if idx, found := inv[x.Index]; found {
					return &plan.ColRef{Index: idx, Name: x.Name, Typ: x.Typ}
				}
				ok = false
			case *plan.CorrRef, *plan.Subquery:
				ok = false
			}
			return x
		})
		return out, ok
	}

	calls := make([]plan.AggCall, len(info.Aggs))
	for i, call := range info.Aggs {
		args := make([]plan.Expr, len(call.Args))
		for j, a := range call.Args {
			mapped, ok := invMap(a)
			if !ok {
				return nil, false
			}
			args[j] = mapped
		}
		call.Args = args
		if call.Filter != nil {
			mf, ok := invMap(call.Filter)
			if !ok {
				return nil, false
			}
			call.Filter = mf
		}
		calls[i] = call
	}

	// Commit: register the aggregate calls and splice the formula.
	ab.b.inlined = append(ab.b.inlined, ph.info.Name)
	indexes := make([]int, len(calls))
	for i, call := range calls {
		indexes[i] = ab.addAgg(call)
	}
	result := plan.ReplaceAggRefs(info.Formula, func(ar *plan.AggRef) plan.Expr {
		i := indexes[ar.Index]
		return &plan.ColRef{Index: ab.aggOut(i), Name: "agg", Typ: ar.Typ}
	})
	return result, true
}
