package binder

import (
	"strings"
	"testing"

	"github.com/measures-sql/msql/internal/catalog"
	"github.com/measures-sql/msql/internal/parser"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	mustTable := func(name string, cols []string, kinds []sqltypes.Kind) {
		types := make([]sqltypes.Type, len(kinds))
		for i, k := range kinds {
			types[i] = sqltypes.Type{Kind: k}
		}
		if _, err := cat.CreateTable(name, cols, types, false); err != nil {
			t.Fatal(err)
		}
	}
	mustTable("Orders",
		[]string{"prodName", "custName", "orderDate", "revenue", "cost"},
		[]sqltypes.Kind{sqltypes.KindString, sqltypes.KindString, sqltypes.KindDate, sqltypes.KindInt, sqltypes.KindInt})
	mustTable("Customers",
		[]string{"custName", "custAge"},
		[]sqltypes.Kind{sqltypes.KindString, sqltypes.KindInt})

	mv, err := parser.ParseQuery(`SELECT *, SUM(revenue) AS MEASURE rev FROM Orders`)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.CreateView("MV", mv, false); err != nil {
		t.Fatal(err)
	}
	return cat
}

func bind(t *testing.T, cat *catalog.Catalog, sql string) plan.Node {
	t.Helper()
	q, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	node, err := New(cat).BindQuery(q)
	if err != nil {
		t.Fatalf("bind %q: %v", sql, err)
	}
	return node
}

func bindErr(t *testing.T, cat *catalog.Catalog, sql, needle string) {
	t.Helper()
	q, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	_, err = New(cat).BindQuery(q)
	if err == nil {
		t.Fatalf("bind %q: expected error containing %q", sql, needle)
	}
	if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(needle)) {
		t.Errorf("bind %q: error %q missing %q", sql, err, needle)
	}
}

func TestSchemaAndTypes(t *testing.T) {
	cat := testCatalog(t)
	node := bind(t, cat, `SELECT prodName, revenue * 2 AS dbl, revenue / cost AS ratio FROM Orders`)
	cols := node.Schema().Cols
	if cols[0].Typ.Kind != sqltypes.KindString {
		t.Errorf("col0 type %v", cols[0].Typ)
	}
	if cols[1].Typ.Kind != sqltypes.KindInt || cols[1].Name != "dbl" {
		t.Errorf("col1 %v %s", cols[1].Typ, cols[1].Name)
	}
	// Division is always DOUBLE.
	if cols[2].Typ.Kind != sqltypes.KindFloat {
		t.Errorf("division type %v", cols[2].Typ)
	}
}

func TestMeasureSchemaMetadata(t *testing.T) {
	cat := testCatalog(t)
	node := bind(t, cat, `SELECT * FROM MV`)
	cols := node.Schema().Cols
	if len(cols) != 6 {
		t.Fatalf("MV has %d cols: %v", len(cols), node.Schema().ColNames())
	}
	m := cols[5]
	if m.Name != "rev" || m.Measure == nil || !m.Typ.Measure || m.Typ.Kind != sqltypes.KindInt {
		t.Fatalf("measure col: %+v", m)
	}
	info := m.Measure
	if len(info.Dims) != 5 {
		t.Errorf("dims: %d", len(info.Dims))
	}
	if len(info.Aggs) != 1 || info.Aggs[0].Name != "SUM" {
		t.Errorf("aggs: %v", info.Aggs)
	}
	// The positional invariant: dims correspond to non-measure columns.
	for i, d := range info.Dims {
		if !strings.EqualFold(d.Name, cols[i].Name) {
			t.Errorf("dim %d name %s vs col %s", i, d.Name, cols[i].Name)
		}
	}
}

// With inlining on (default), the canonical group-by query has no measure
// subquery: the formula becomes plain aggregate calls.
func TestInlineFastPath(t *testing.T) {
	cat := testCatalog(t)
	sql := `SELECT prodName, AGGREGATE(rev) AS r FROM MV GROUP BY prodName`
	node := bind(t, cat, sql)
	if planHasSubquery(node) {
		t.Errorf("inline path should not produce a subquery:\n%s", plan.ExplainTree(node))
	}

	q, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	node, err = New(cat).WithInline(false).BindQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if !planHasSubquery(node) {
		t.Errorf("with inlining off the measure must expand to a subquery:\n%s", plan.ExplainTree(node))
	}
}

// Inlining is NOT applied when it would change semantics.
func TestInlineGuards(t *testing.T) {
	cat := testCatalog(t)
	guards := []string{
		// Bare measure ignores WHERE; partition does not.
		`SELECT prodName, rev AS r FROM MV WHERE custName <> 'Bob' GROUP BY prodName`,
		// ROLLUP has multiple grouping sets.
		`SELECT prodName, AGGREGATE(rev) AS r FROM MV GROUP BY ROLLUP(prodName)`,
		// Modified contexts.
		`SELECT prodName, rev AT (ALL) AS r FROM MV GROUP BY prodName`,
	}
	for _, sql := range guards {
		node := bind(t, cat, sql)
		if !planHasSubquery(node) {
			t.Errorf("%q must not inline:\n%s", sql, plan.ExplainTree(node))
		}
	}
	// But AGGREGATE(m) with a mappable WHERE can inline.
	node := bind(t, cat, `SELECT prodName, AGGREGATE(rev) AS r FROM MV WHERE custName <> 'Bob' GROUP BY prodName`)
	if planHasSubquery(node) {
		t.Errorf("VISIBLE with mappable WHERE should inline:\n%s", plan.ExplainTree(node))
	}
}

func planHasSubquery(n plan.Node) bool {
	found := false
	plan.VisitNodeExprs(n, func(e plan.Expr) {
		plan.WalkExprs(e, func(x plan.Expr) {
			if _, ok := x.(*plan.Subquery); ok {
				found = true
			}
		})
	})
	if found {
		return true
	}
	for _, c := range n.Children() {
		if planHasSubquery(c) {
			return true
		}
	}
	return false
}

func TestCorrelationLevels(t *testing.T) {
	cat := testCatalog(t)
	// Doubly-nested correlation: the innermost query references the
	// outermost row two frames up.
	node := bind(t, cat, `
		SELECT prodName FROM Orders AS o
		WHERE EXISTS (SELECT 1 FROM Customers AS c
		              WHERE c.custName = o.custName
		                AND EXISTS (SELECT 1 FROM Orders AS i
		                            WHERE i.prodName = o.prodName))`)
	var deepest int
	var walk func(n plan.Node, depth int)
	walk = func(n plan.Node, depth int) {
		plan.VisitNodeExprs(n, func(e plan.Expr) {
			plan.WalkExprs(e, func(x plan.Expr) {
				switch x := x.(type) {
				case *plan.CorrRef:
					if x.Levels > deepest {
						deepest = x.Levels
					}
				case *plan.Subquery:
					walk(x.Plan, depth+1)
				}
			})
		})
		for _, c := range n.Children() {
			walk(c, depth)
		}
	}
	walk(node, 0)
	if deepest != 2 {
		t.Errorf("deepest correlation level = %d, want 2", deepest)
	}
}

func TestBindErrors(t *testing.T) {
	cat := testCatalog(t)
	bindErr(t, cat, `SELECT AGGREGATE(prodName) FROM MV GROUP BY prodName`, "measure")
	bindErr(t, cat, `SELECT SUM(rev) FROM MV GROUP BY prodName`, "AGGREGATE")
	bindErr(t, cat, `SELECT prodName, AGGREGATE(rev) AS r FROM MV GROUP BY prodName, rev`, "measure")
	bindErr(t, cat, `SELECT prodName FROM MV AS a JOIN MV AS b USING (prodName) GROUP BY prodName HAVING AGGREGATE(revenue) > 1`, "ambiguous")
	bindErr(t, cat, `SELECT o.rev FROM MV AS o JOIN Customers USING (custName)`, "join")
	bindErr(t, cat, `SELECT prodName, SUM(revenue) AS MEASURE m FROM Orders GROUP BY prodName`, "aggregate query")
	bindErr(t, cat, `SELECT m AT (WHERE (SELECT 1 FROM Orders) = 1) FROM (SELECT *, SUM(revenue) AS MEASURE m FROM Orders) AS v GROUP BY prodName`, "subquer")
	bindErr(t, cat, `SELECT CURRENT prodName FROM Orders`, "CURRENT")
	bindErr(t, cat, `SELECT prodName FROM Orders GROUP BY prodName ORDER BY revenue`, "GROUP BY")
	bindErr(t, cat, `SELECT DISTINCT prodName FROM Orders ORDER BY revenue`, "output column")
}

func TestViewBindingIsolation(t *testing.T) {
	cat := testCatalog(t)
	// Views cannot see the outer query's scope.
	q, err := parser.ParseQuery(`SELECT (SELECT rev FROM MV WHERE prodName = o.prodName LIMIT 1) FROM Orders AS o`)
	if err != nil {
		t.Fatal(err)
	}
	// Binding may fail (measure in scalar position) but must not panic,
	// and the failure must be about the measure, not scope leakage.
	if _, err := New(cat).BindQuery(q); err == nil {
		t.Log("bound successfully (row-context measure)")
	}
}

func TestUsingResolvesUnambiguously(t *testing.T) {
	cat := testCatalog(t)
	node := bind(t, cat, `
		SELECT custName, COUNT(*) AS c
		FROM Orders JOIN Customers USING (custName)
		GROUP BY custName`)
	if node.Schema().Cols[0].Name != "custName" {
		t.Errorf("schema: %v", node.Schema().ColNames())
	}
	bindErr(t, cat, `
		SELECT custName FROM Orders JOIN Customers ON Orders.custName = Customers.custName`,
		"ambiguous")
}

func TestSetOpTypeUnification(t *testing.T) {
	cat := testCatalog(t)
	node := bind(t, cat, `SELECT revenue FROM Orders UNION ALL SELECT custAge / 2 FROM Customers`)
	if node.Schema().Cols[0].Typ.Kind != sqltypes.KindFloat {
		t.Errorf("unified type: %v", node.Schema().Cols[0].Typ)
	}
	bindErr(t, cat, `SELECT revenue FROM Orders UNION SELECT prodName FROM Orders`, "incompatible")
}
