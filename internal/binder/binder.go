// Package binder performs semantic analysis: it resolves names against
// the catalog, type-checks expressions, and lowers ASTs to logical plans.
// It is also where the paper's measure semantics are driven from: measure
// definitions (AS MEASURE) become plan.MeasureInfo metadata, and every
// measure *use* is expanded — with internal/core — into a correlated
// scalar subquery whose WHERE clause is the reified evaluation context
// (paper §4.2).
package binder

import (
	"fmt"
	"strings"

	"github.com/measures-sql/msql/internal/ast"
	"github.com/measures-sql/msql/internal/catalog"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// Binder binds statements against a catalog.
type Binder struct {
	cat       *catalog.Catalog
	ctes      map[string]*cteDef
	viewDepth int
	inline    bool
	// inlined records the measures the §6.4 fast path replaced with plain
	// aggregate calls during the last bind, for lifecycle tracing.
	inlined []string
	// params holds the declared kinds of prepared-statement parameters;
	// $n binds to params[n-1]. Nil means parameters are rejected.
	params []sqltypes.Kind
}

type cteDef struct {
	name   string
	node   plan.Node
	schema *plan.Schema
}

// New creates a Binder over cat.
func New(cat *catalog.Catalog) *Binder {
	return &Binder{cat: cat, ctes: map[string]*cteDef{}, inline: true}
}

// WithInline toggles the measure-inlining fast path (paper §6.4: "in
// simple cases ... it may be valid to inline the measure definition").
// When off, every measure reference expands to a correlated subquery —
// the general strategy — which the benchmarks use as an ablation.
func (b *Binder) WithInline(on bool) *Binder {
	b.inline = on
	return b
}

// InlinedMeasures returns the names of measures inlined into plain
// aggregates during binding, in the order the rewrite fired.
func (b *Binder) InlinedMeasures() []string { return b.inlined }

// WithParams declares the types of the prepared-statement parameters the
// query may reference: $n binds with kind kinds[n-1]. Without it, any
// parameter reference is a bind error.
func (b *Binder) WithParams(kinds []sqltypes.Kind) *Binder {
	b.params = kinds
	return b
}

// Rel is one relation visible in a scope frame. If Exprs is non-nil the
// relation is virtual (e.g. a measure's dimension frame) and resolving
// column i yields Exprs[i] instead of a ColRef.
type Rel struct {
	Alias  string
	Cols   []plan.Col
	Offset int
	Exprs  []plan.Expr
	Using  map[string]bool
	// AnyAlias relations match any qualifier (used for the synthetic
	// call-site frame of aggregate queries, where o.prodName must resolve
	// to the group key named prodName).
	AnyAlias bool
}

// Scope is one name-resolution frame; parent frames are other query
// levels (crossing one adds a correlation level).
type Scope struct {
	parent *Scope
	rels   []*Rel
}

func (s *Scope) child() *Scope { return &Scope{parent: s} }

// width returns the total number of columns in the frame's row.
func (s *Scope) width() int {
	n := 0
	for _, r := range s.rels {
		n += len(r.Cols)
	}
	return n
}

// resolved is the result of name resolution.
type resolved struct {
	expr   plan.Expr
	col    plan.Col
	levels int
	rel    *Rel
	index  int // flattened index within the frame row
}

var errNotFound = fmt.Errorf("not found")

// resolve finds a column by optional qualifier and name, searching the
// current frame then parents (adding correlation levels).
func (s *Scope) resolve(qual, name string) (resolved, error) {
	for level, frame := 0, s; frame != nil; level, frame = level+1, frame.parent {
		var hits []resolved
		for _, rel := range frame.rels {
			if qual != "" && !rel.AnyAlias && !strings.EqualFold(rel.Alias, qual) {
				continue
			}
			for i, col := range rel.Cols {
				if !strings.EqualFold(col.Name, name) {
					continue
				}
				idx := rel.Offset + i
				var e plan.Expr
				if rel.Exprs != nil {
					if level > 0 {
						return resolved{}, fmt.Errorf("cannot correlate into a dimension scope: %s", name)
					}
					e = rel.Exprs[i]
					if e == nil {
						return resolved{}, fmt.Errorf("dimension %s is not derivable from the measure's base table", name)
					}
				} else if level == 0 {
					e = &plan.ColRef{Index: idx, Name: col.Name, Typ: col.Typ}
				} else {
					e = &plan.CorrRef{Levels: level, Index: idx, Name: col.Name, Typ: col.Typ}
				}
				hits = append(hits, resolved{expr: e, col: col, levels: level, rel: rel, index: idx})
			}
		}
		switch {
		case len(hits) == 1:
			return hits[0], nil
		case len(hits) > 1:
			// USING columns resolve to the leftmost occurrence.
			if qual == "" && hits[0].rel.Using != nil && hits[0].rel.Using[strings.ToLower(name)] {
				return hits[0], nil
			}
			return resolved{}, fmt.Errorf("column reference %q is ambiguous", name)
		}
	}
	if qual != "" {
		return resolved{}, fmt.Errorf("column %s.%s %w", qual, name, errNotFound)
	}
	return resolved{}, fmt.Errorf("column %s %w", name, errNotFound)
}

// BindQuery binds a full query in a fresh top-level scope and returns its
// plan. The plan's Schema carries measure metadata for any re-exported
// measure columns.
func (b *Binder) BindQuery(q *ast.Query) (plan.Node, error) {
	return b.bindQuery(q, nil)
}

func (b *Binder) bindQuery(q *ast.Query, outer *Scope) (plan.Node, error) {
	// CTEs: visible to the body and to later CTEs; restore the previous
	// map afterward (lexical scoping).
	if len(q.With) > 0 {
		saved := b.ctes
		b.ctes = make(map[string]*cteDef, len(saved)+len(q.With))
		for k, v := range saved {
			b.ctes[k] = v
		}
		defer func() { b.ctes = saved }()
		for _, cte := range q.With {
			node, err := b.bindQuery(cte.Query, outer)
			if err != nil {
				return nil, fmt.Errorf("in WITH %s: %w", cte.Name, err)
			}
			b.ctes[strings.ToLower(cte.Name)] = &cteDef{name: cte.Name, node: node, schema: node.Schema()}
		}
	}

	var node plan.Node
	var err error
	switch body := q.Body.(type) {
	case *ast.Select:
		node, err = b.bindSelect(body, q.OrderBy, outer)
		if err != nil {
			return nil, err
		}
	default:
		node, err = b.bindBody(q.Body, outer)
		if err != nil {
			return nil, err
		}
		if len(q.OrderBy) > 0 {
			node, err = b.bindSetOpOrder(node, q.OrderBy)
			if err != nil {
				return nil, err
			}
		}
	}

	if q.Limit != nil || q.Offset != nil {
		count, err := b.bindConstInt(q.Limit, "LIMIT")
		if err != nil {
			return nil, err
		}
		offset, err := b.bindConstInt(q.Offset, "OFFSET")
		if err != nil {
			return nil, err
		}
		node = &plan.Limit{Input: node, Count: count, Offset: offset}
	}
	return node, nil
}

func (b *Binder) bindBody(body ast.Body, outer *Scope) (plan.Node, error) {
	switch body := body.(type) {
	case *ast.Select:
		return b.bindSelect(body, nil, outer)
	case *ast.SubqueryBody:
		return b.bindQuery(body.Query, outer)
	case *ast.SetOp:
		left, err := b.bindBody(body.Left, outer)
		if err != nil {
			return nil, err
		}
		right, err := b.bindBody(body.Right, outer)
		if err != nil {
			return nil, err
		}
		return b.bindSetOp(body, left, right)
	default:
		return nil, fmt.Errorf("unsupported query body %T", body)
	}
}

func (b *Binder) bindSetOp(op *ast.SetOp, left, right plan.Node) (plan.Node, error) {
	ls, rs := left.Schema(), right.Schema()
	if len(ls.Cols) != len(rs.Cols) {
		return nil, fmt.Errorf("%s requires inputs with the same number of columns (%d vs %d)",
			op.Op, len(ls.Cols), len(rs.Cols))
	}
	sch := &plan.Schema{Cols: make([]plan.Col, len(ls.Cols))}
	for i := range ls.Cols {
		if ls.Cols[i].Measure != nil || rs.Cols[i].Measure != nil ||
			ls.Cols[i].Typ.Measure || rs.Cols[i].Typ.Measure {
			return nil, fmt.Errorf("set operations over tables with measure columns are not supported (column %s); evaluate the measure first", ls.Cols[i].Name)
		}
		kind, err := sqltypes.CommonType(ls.Cols[i].Typ.Kind, rs.Cols[i].Typ.Kind)
		if err != nil {
			return nil, fmt.Errorf("%s column %d: %v", op.Op, i+1, err)
		}
		sch.Cols[i] = plan.Col{Name: ls.Cols[i].Name, Typ: sqltypes.Type{Kind: kind}}
	}
	return &plan.SetOp{Op: op.Op, All: op.All, Left: left, Right: right, Sch: sch}, nil
}

// bindSetOpOrder binds ORDER BY over a set operation's output: names and
// ordinals only.
func (b *Binder) bindSetOpOrder(node plan.Node, items []ast.OrderItem) (plan.Node, error) {
	sch := node.Schema()
	sortItems := make([]plan.SortItem, len(items))
	for i, item := range items {
		idx := -1
		switch e := item.Expr.(type) {
		case *ast.NumberLit:
			if !e.IsInt || e.Int < 1 || int(e.Int) > len(sch.Cols) {
				return nil, fmt.Errorf("ORDER BY position %s is out of range", e.Text)
			}
			idx = int(e.Int) - 1
		case *ast.Ident:
			for j, c := range sch.Cols {
				if strings.EqualFold(c.Name, e.Name()) {
					idx = j
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("ORDER BY column %s not found in output", e.Name())
			}
		default:
			return nil, fmt.Errorf("ORDER BY over a set operation supports only output column names and ordinals")
		}
		sortItems[i] = plan.SortItem{
			Expr:       &plan.ColRef{Index: idx, Name: sch.Cols[idx].Name, Typ: sch.Cols[idx].Typ},
			Desc:       item.Desc,
			NullsFirst: nullsFirst(item),
		}
	}
	return &plan.Sort{Input: node, Items: sortItems}, nil
}

func nullsFirst(item ast.OrderItem) bool {
	if item.NullsFirst != nil {
		return *item.NullsFirst
	}
	// SQL default: NULLS LAST when ascending, NULLS FIRST when descending.
	return item.Desc
}

func (b *Binder) bindConstInt(e ast.Expr, what string) (plan.Expr, error) {
	if e == nil {
		return nil, nil
	}
	eb := &exprBinder{b: b, scope: &Scope{}}
	bound, err := eb.bind(e)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", what, err)
	}
	if bound.Type().Kind != sqltypes.KindInt {
		return nil, fmt.Errorf("%s must be an integer", what)
	}
	return bound, nil
}

// inferName derives an output column name from an AST expression when no
// alias is given.
func inferName(e ast.Expr, i int) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name()
	case *ast.FuncCall:
		if (strings.EqualFold(e.Name, "AGGREGATE") || strings.EqualFold(e.Name, "EVAL")) && len(e.Args) == 1 {
			if id, ok := e.Args[0].(*ast.Ident); ok {
				return id.Name()
			}
		}
		return strings.ToLower(e.Name)
	case *ast.At:
		return inferName(e.X, i)
	case *ast.Cast:
		return inferName(e.X, i)
	default:
		return fmt.Sprintf("col%d", i+1)
	}
}
