package binder

import (
	"fmt"
	"strings"

	"github.com/measures-sql/msql/internal/ast"
	"github.com/measures-sql/msql/internal/fn"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// selItem is a select item after star expansion.
type selItem struct {
	astExpr    ast.Expr
	alias      string
	measureDef bool
	raw        plan.Expr // bound expression (set during binding)
}

func (b *Binder) bindSelect(sel *ast.Select, orderBy []ast.OrderItem, outer *Scope) (plan.Node, error) {
	fr, err := b.bindFrom(sel.From, outer)
	if err != nil {
		return nil, err
	}

	items, err := b.expandStars(sel, fr)
	if err != nil {
		return nil, err
	}

	// WHERE: measures used here evaluate in row context (paper Listing 12
	// query 4).
	var whereExpr plan.Expr
	if sel.Where != nil {
		eb := &exprBinder{b: b, scope: fr.scope, allowMeasures: true}
		raw, err := eb.bind(sel.Where)
		if err != nil {
			return nil, fmt.Errorf("in WHERE: %w", err)
		}
		raw, err = b.expandRowSite(raw, fr, nil)
		if err != nil {
			return nil, fmt.Errorf("in WHERE: %w", err)
		}
		if err := requireBool(raw, "WHERE"); err != nil {
			return nil, err
		}
		whereExpr = raw
	}

	if isAggregateQuery(sel, items) {
		return b.bindAggSelect(sel, items, orderBy, fr, whereExpr)
	}
	return b.bindPlainSelect(sel, items, orderBy, fr, whereExpr)
}

// expandStars flattens * and t.* select items into explicit items.
func (b *Binder) expandStars(sel *ast.Select, fr *fromResult) ([]*selItem, error) {
	var items []*selItem
	for _, item := range sel.Items {
		if !item.Star {
			alias := item.Alias
			if alias == "" {
				alias = inferName(item.Expr, len(items))
			}
			items = append(items, &selItem{astExpr: item.Expr, alias: alias, measureDef: item.Measure})
			continue
		}
		matched := false
		seenUsing := map[string]bool{}
		for _, rel := range fr.scope.rels {
			if item.StarTable != "" && !strings.EqualFold(rel.Alias, item.StarTable) {
				continue
			}
			matched = true
			for _, col := range rel.Cols {
				// USING columns appear once in a * expansion.
				if item.StarTable == "" && rel.Using != nil && rel.Using[strings.ToLower(col.Name)] {
					if seenUsing[strings.ToLower(col.Name)] {
						continue
					}
					seenUsing[strings.ToLower(col.Name)] = true
				}
				ident := &ast.Ident{Parts: []string{rel.Alias, col.Name}}
				if rel.Alias == "" {
					ident = &ast.Ident{Parts: []string{col.Name}}
				}
				items = append(items, &selItem{astExpr: ident, alias: col.Name})
			}
		}
		if !matched {
			if item.StarTable != "" {
				return nil, fmt.Errorf("unknown table %s in %s.*", item.StarTable, item.StarTable)
			}
			return nil, fmt.Errorf("SELECT * requires a FROM clause")
		}
	}
	return items, nil
}

// isAggregateQuery decides whether the select computes aggregates: a
// GROUP BY or HAVING clause, or an aggregate function (including
// AGGREGATE) in the select list outside measure definitions.
func isAggregateQuery(sel *ast.Select, items []*selItem) bool {
	if len(sel.GroupBy) > 0 || sel.Having != nil {
		return true
	}
	for _, item := range items {
		if item.measureDef {
			continue
		}
		if astHasAggCall(item.astExpr) {
			return true
		}
	}
	return false
}

func astHasAggCall(e ast.Expr) bool {
	found := false
	ast.WalkExpr(e, func(x ast.Expr) bool {
		if fc, ok := x.(*ast.FuncCall); ok {
			if fc.Over != nil {
				return false // window, not a group aggregate; don't descend
			}
			name := strings.ToUpper(fc.Name)
			if name == "AGGREGATE" || fn.IsAggName(name) || name == "GROUPING" {
				found = true
			}
		}
		return true
	})
	return found
}

// ---------------------------------------------------------------------------
// Non-aggregate path

func (b *Binder) bindPlainSelect(sel *ast.Select, items []*selItem, orderBy []ast.OrderItem, fr *fromResult, whereExpr plan.Expr) (plan.Node, error) {
	var input plan.Node = fr.node
	if whereExpr != nil {
		input = &plan.Filter{Input: input, Pred: whereExpr}
	}

	// QUALIFY: bound with the select items so its window functions share
	// the Window node.
	var qualifyExpr plan.Expr
	if sel.Qualify != nil {
		eb := &exprBinder{b: b, scope: fr.scope, allowMeasures: true, allowWindow: true}
		raw, err := eb.bind(sel.Qualify)
		if err != nil {
			return nil, fmt.Errorf("in QUALIFY: %w", err)
		}
		raw, err = b.expandRowSite(raw, fr, whereExpr)
		if err != nil {
			return nil, fmt.Errorf("in QUALIFY: %w", err)
		}
		if err := requireBool(raw, "QUALIFY"); err != nil {
			return nil, err
		}
		qualifyExpr = raw
	}

	// Pass 1: bind non-measure-definition items.
	type outCol struct {
		expr   plan.Expr
		col    plan.Col
		reMeas *measurePH // bare measure reference to re-export
	}
	outs := make([]outCol, len(items))
	for i, item := range items {
		if item.measureDef {
			continue
		}
		eb := &exprBinder{b: b, scope: fr.scope, allowMeasures: true, allowWindow: true}
		raw, err := eb.bind(item.astExpr)
		if err != nil {
			return nil, fmt.Errorf("in SELECT item %d: %w", i+1, err)
		}
		item.raw = raw
		if ph, ok := raw.(*measurePH); ok && ph.bare && len(ph.mods) == 0 {
			// Closure property (§5.4): project the measure through.
			outs[i] = outCol{reMeas: ph}
			continue
		}
		expanded, err := b.expandRowSite(raw, fr, whereExpr)
		if err != nil {
			return nil, fmt.Errorf("in SELECT item %d: %w", i+1, err)
		}
		outs[i] = outCol{expr: expanded, col: plan.Col{Name: item.alias, Typ: expanded.Type()}}
	}

	// Hoist window functions into a Window node.
	input = b.hoistWindows(input, func(f func(plan.Expr) plan.Expr) {
		for i := range outs {
			if outs[i].expr != nil {
				outs[i].expr = f(outs[i].expr)
			}
		}
		if qualifyExpr != nil {
			qualifyExpr = f(qualifyExpr)
		}
	})
	if qualifyExpr != nil {
		input = &plan.Filter{Input: input, Pred: qualifyExpr}
	}

	// Pass 2: measure definitions (they may reference sibling measures).
	for i, item := range items {
		if !item.measureDef {
			continue
		}
		info, err := b.defineMeasure(item, items, fr, whereExpr)
		if err != nil {
			return nil, fmt.Errorf("in measure %s: %w", item.alias, err)
		}
		outs[i] = outCol{
			expr: &plan.Lit{Val: sqltypes.Null(info.ValueType.Kind)},
			col:  plan.Col{Name: item.alias, Typ: info.ValueType.AsMeasure(), Measure: info},
		}
	}

	// Re-exports (need the final item list for dimensionality).
	for i := range outs {
		if outs[i].reMeas == nil {
			continue
		}
		info, err := b.reexportMeasure(outs[i].reMeas, items[i].alias, items, fr, whereExpr)
		if err != nil {
			return nil, fmt.Errorf("in SELECT item %d: %w", i+1, err)
		}
		outs[i] = outCol{
			expr: &plan.Lit{Val: sqltypes.Null(info.ValueType.Kind)},
			col:  plan.Col{Name: items[i].alias, Typ: info.ValueType.AsMeasure(), Measure: info},
		}
	}

	exprs := make([]plan.NamedExpr, len(outs))
	sch := &plan.Schema{Cols: make([]plan.Col, len(outs))}
	for i, o := range outs {
		exprs[i] = plan.NamedExpr{Expr: o.expr, Col: o.col}
		sch.Cols[i] = o.col
	}
	node := plan.Node(&plan.Project{Input: input, Exprs: exprs, Sch: sch})

	return b.finishSelect(node, sel.Distinct, orderBy, items, func(e ast.Expr) (plan.Expr, error) {
		eb := &exprBinder{b: b, scope: fr.scope, allowMeasures: true}
		raw, err := eb.bind(e)
		if err != nil {
			return nil, err
		}
		return b.expandRowSite(raw, fr, whereExpr)
	}, input)
}

// hoistWindows scans the current output expressions for window
// placeholders, builds a Window node computing them over input, and
// rewrites the placeholders into column references. The rewrite callback
// lets the caller apply the transformation to its expression slots. It
// returns the node projections should now read from.
func (b *Binder) hoistWindows(input plan.Node, each func(func(plan.Expr) plan.Expr)) plan.Node {
	width := len(input.Schema().Cols)
	var funcs []plan.WindowFunc
	index := map[string]int{}
	rewrite := func(e plan.Expr) plan.Expr {
		return plan.TransformExpr(e, func(x plan.Expr) plan.Expr {
			ph, ok := x.(*windowPH)
			if !ok {
				return x
			}
			key := fmt.Sprintf("%v", ph.fn)
			idx, seen := index[key]
			if !seen {
				idx = len(funcs)
				index[key] = idx
				funcs = append(funcs, ph.fn)
			}
			return &plan.ColRef{Index: width + idx, Name: fmt.Sprintf("win%d", idx), Typ: ph.fn.Typ}
		})
	}
	each(rewrite)
	if len(funcs) == 0 {
		return input
	}
	sch := &plan.Schema{Cols: append([]plan.Col{}, input.Schema().Cols...)}
	for i, f := range funcs {
		sch.Cols = append(sch.Cols, plan.Col{Name: fmt.Sprintf("win%d", i), Typ: f.Typ})
	}
	return &plan.Window{Input: input, Funcs: funcs, Sch: sch}
}

// finishSelect applies DISTINCT and ORDER BY (with hidden sort columns
// when the sort expression is not in the output).
func (b *Binder) finishSelect(node plan.Node, distinct bool, orderBy []ast.OrderItem, items []*selItem, bindOrderExpr func(ast.Expr) (plan.Expr, error), sortInput plan.Node) (plan.Node, error) {
	if distinct {
		node = &plan.Distinct{Input: node}
	}
	if len(orderBy) == 0 {
		return node, nil
	}

	proj, isProj := node.(*plan.Project)
	sch := node.Schema()
	var sortItems []plan.SortItem
	var hidden []plan.NamedExpr

	for _, item := range orderBy {
		idx := -1
		switch e := item.Expr.(type) {
		case *ast.NumberLit:
			if !e.IsInt || e.Int < 1 || int(e.Int) > len(sch.Cols) {
				return nil, fmt.Errorf("ORDER BY position %s is out of range", e.Text)
			}
			idx = int(e.Int) - 1
		case *ast.Ident:
			if e.Qualifier() == "" {
				for j, it := range items {
					if strings.EqualFold(it.alias, e.Name()) {
						idx = j
						break
					}
				}
			}
		}
		if idx >= 0 {
			if sch.Cols[idx].Measure != nil {
				return nil, fmt.Errorf("cannot ORDER BY measure column %s; use AGGREGATE", sch.Cols[idx].Name)
			}
			sortItems = append(sortItems, plan.SortItem{
				Expr:       &plan.ColRef{Index: idx, Name: sch.Cols[idx].Name, Typ: sch.Cols[idx].Typ},
				Desc:       item.Desc,
				NullsFirst: nullsFirst(item),
			})
			continue
		}
		// General expression: bind it and add a hidden column.
		if !isProj {
			return nil, fmt.Errorf("ORDER BY expression must be an output column name or ordinal here")
		}
		if distinct {
			return nil, fmt.Errorf("with SELECT DISTINCT, ORDER BY expressions must appear in the select list")
		}
		bound, err := bindOrderExpr(item.Expr)
		if err != nil {
			return nil, fmt.Errorf("in ORDER BY: %w", err)
		}
		// Reuse an existing projection if it is the same expression.
		for j, ne := range proj.Exprs {
			if ne.Expr.String() == bound.String() {
				idx = j
				break
			}
		}
		if idx < 0 {
			idx = len(proj.Exprs) + len(hidden)
			hidden = append(hidden, plan.NamedExpr{Expr: bound, Col: plan.Col{Name: fmt.Sprintf("sort%d", len(hidden)), Typ: bound.Type()}})
		}
		sortItems = append(sortItems, plan.SortItem{
			Expr:       &plan.ColRef{Index: idx, Typ: bound.Type(), Name: "sort"},
			Desc:       item.Desc,
			NullsFirst: nullsFirst(item),
		})
	}

	if len(hidden) > 0 {
		wide := &plan.Project{
			Input: sortInput,
			Exprs: append(append([]plan.NamedExpr{}, proj.Exprs...), hidden...),
		}
		wideSch := &plan.Schema{Cols: make([]plan.Col, len(wide.Exprs))}
		for i, ne := range wide.Exprs {
			wideSch.Cols[i] = ne.Col
		}
		wide.Sch = wideSch
		sorted := &plan.Sort{Input: wide, Items: sortItems}
		// Strip the hidden columns.
		finalExprs := make([]plan.NamedExpr, len(proj.Exprs))
		finalSch := &plan.Schema{Cols: make([]plan.Col, len(proj.Exprs))}
		for i, ne := range proj.Exprs {
			finalExprs[i] = plan.NamedExpr{
				Expr: &plan.ColRef{Index: i, Name: ne.Col.Name, Typ: ne.Col.Typ},
				Col:  ne.Col,
			}
			finalSch.Cols[i] = ne.Col
		}
		return &plan.Project{Input: sorted, Exprs: finalExprs, Sch: finalSch}, nil
	}
	return &plan.Sort{Input: node, Items: sortItems}, nil
}
