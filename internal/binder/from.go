package binder

import (
	"errors"
	"fmt"
	"strings"

	"github.com/measures-sql/msql/internal/ast"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// fromResult carries everything bindSelect needs to know about the FROM
// clause: the plan, the scope frame, and join structure (for the VISIBLE
// modifier and grain-preserving link terms).
type fromResult struct {
	node    plan.Node
	scope   *Scope
	hasJoin bool
}

func (b *Binder) bindFrom(from ast.TableExpr, outer *Scope) (*fromResult, error) {
	if from == nil {
		// SELECT without FROM: a single empty row.
		node := &plan.Values{Rows: [][]plan.Expr{{}}, Sch: &plan.Schema{}}
		return &fromResult{node: node, scope: &Scope{parent: outer}}, nil
	}
	scope := &Scope{parent: outer}
	node, rels, hasJoin, err := b.bindTableExpr(from, scope)
	if err != nil {
		return nil, err
	}
	scope.rels = rels
	return &fromResult{node: node, scope: scope, hasJoin: hasJoin}, nil
}

// bindTableExpr binds a FROM item. scope is the under-construction frame
// (used as the parent context for derived-table subqueries); returned
// rels carry correct offsets relative to the combined row.
func (b *Binder) bindTableExpr(te ast.TableExpr, scope *Scope) (plan.Node, []*Rel, bool, error) {
	switch te := te.(type) {
	case *ast.TableName:
		node, rel, err := b.bindTableName(te, scope)
		if err != nil {
			return nil, nil, false, err
		}
		return node, []*Rel{rel}, false, nil

	case *ast.SubqueryTable:
		node, err := b.bindQuery(te.Query, scope.parent)
		if err != nil {
			return nil, nil, false, err
		}
		alias := te.Alias
		rel := &Rel{Alias: alias, Cols: node.Schema().Cols}
		return node, []*Rel{rel}, false, nil

	case *ast.JoinExpr:
		return b.bindJoin(te, scope)

	default:
		return nil, nil, false, fmt.Errorf("unsupported FROM item %T", te)
	}
}

func (b *Binder) bindTableName(tn *ast.TableName, scope *Scope) (plan.Node, *Rel, error) {
	alias := tn.Alias
	if alias == "" {
		alias = tn.Name
	}
	// CTEs shadow catalog objects.
	if cte, ok := b.ctes[strings.ToLower(tn.Name)]; ok {
		return cte.node, &Rel{Alias: alias, Cols: cte.schema.Cols}, nil
	}
	if v, ok := b.cat.View(tn.Name); ok {
		if b.viewDepth > 32 {
			return nil, nil, fmt.Errorf("view nesting too deep (circular definition?) at %s", tn.Name)
		}
		b.viewDepth++
		node, err := b.bindQuery(v.Query, nil) // views do not see outer scopes
		b.viewDepth--
		if err != nil {
			return nil, nil, fmt.Errorf("in view %s: %w", v.ViewName, err)
		}
		return node, &Rel{Alias: alias, Cols: node.Schema().Cols}, nil
	}
	if t, ok := b.cat.Table(tn.Name); ok {
		names, types := t.ColNames(), t.ColTypes()
		cols := make([]plan.Col, len(names))
		for i := range names {
			cols[i] = plan.Col{Name: names[i], Typ: types[i]}
		}
		sch := &plan.Schema{Cols: cols}
		return &plan.Scan{Source: t, Alias: alias, Sch: sch}, &Rel{Alias: alias, Cols: cols}, nil
	}
	// Virtual system tables (msql_stats.*) resolve last, so they can
	// never shadow a user object. When a qualified reference has no
	// alias, the default alias is the bare table part so that
	// `statements.calls` works in a query over msql_stats.statements.
	if vt, ok := b.cat.Virtual(tn.Name); ok {
		if tn.Alias == "" {
			if i := strings.LastIndex(tn.Name, "."); i >= 0 {
				alias = tn.Name[i+1:]
			}
		}
		names, types := vt.ColNames(), vt.ColTypes()
		cols := make([]plan.Col, len(names))
		for i := range names {
			cols[i] = plan.Col{Name: names[i], Typ: types[i]}
		}
		sch := &plan.Schema{Cols: cols}
		return &plan.Scan{Source: vt, Alias: alias, Sch: sch}, &Rel{Alias: alias, Cols: cols}, nil
	}
	return nil, nil, fmt.Errorf("table or view %s does not exist", tn.Name)
}

func (b *Binder) bindJoin(j *ast.JoinExpr, scope *Scope) (plan.Node, []*Rel, bool, error) {
	leftNode, leftRels, _, err := b.bindTableExpr(j.Left, scope)
	if err != nil {
		return nil, nil, false, err
	}
	rightNode, rightRels, _, err := b.bindTableExpr(j.Right, scope)
	if err != nil {
		return nil, nil, false, err
	}
	leftWidth := len(leftNode.Schema().Cols)
	// Shift right-side rel offsets past the left row.
	for _, r := range rightRels {
		r.Offset += leftWidth
	}
	rels := append(append([]*Rel{}, leftRels...), rightRels...)

	kind := joinKind(j.Kind)
	using := j.Using
	if j.Natural {
		using = naturalColumns(leftRels, rightRels)
		if len(using) == 0 {
			return nil, nil, false, fmt.Errorf("NATURAL JOIN has no common columns")
		}
	}

	join := &plan.Join{Kind: kind, Left: leftNode, Right: rightNode}
	combined := &plan.Schema{
		Cols: append(append([]plan.Col{}, leftNode.Schema().Cols...), rightNode.Schema().Cols...),
	}
	join.Sch = combined

	// Join scope for binding the condition: just the two sides.
	condScope := &Scope{parent: scope.parent, rels: rels}

	switch {
	case len(using) > 0:
		usingSet := map[string]bool{}
		for _, name := range using {
			usingSet[strings.ToLower(name)] = true
			le, err := resolveSide(condScope, leftRels, name)
			if err != nil {
				return nil, nil, false, fmt.Errorf("USING column %s: %v", name, err)
			}
			re, err := resolveSide(condScope, rightRels, name)
			if err != nil {
				return nil, nil, false, fmt.Errorf("USING column %s: %v", name, err)
			}
			// Right-side key must be expressed over the right row.
			join.EquiLeft = append(join.EquiLeft, le)
			join.EquiRight = append(join.EquiRight, shiftLeft(re, leftWidth))
		}
		for _, r := range rels {
			if r.Using == nil {
				r.Using = map[string]bool{}
			}
			for k := range usingSet {
				r.Using[k] = true
			}
		}
	case j.On != nil:
		eb := &exprBinder{b: b, scope: condScope}
		cond, err := eb.bind(j.On)
		if err != nil {
			return nil, nil, false, fmt.Errorf("in JOIN condition: %w", err)
		}
		if err := requireBool(cond, "JOIN condition"); err != nil {
			return nil, nil, false, err
		}
		equiL, equiR, residual := splitEquiConds(cond, leftWidth)
		join.EquiLeft, join.EquiRight, join.Residual = equiL, equiR, residual
	case kind != plan.JoinCross:
		return nil, nil, false, fmt.Errorf("join requires ON or USING")
	}

	return join, rels, true, nil
}

func joinKind(k ast.JoinKind) plan.JoinKind {
	switch k {
	case ast.JoinLeft:
		return plan.JoinLeft
	case ast.JoinRight:
		return plan.JoinRight
	case ast.JoinFull:
		return plan.JoinFull
	case ast.JoinCross:
		return plan.JoinCross
	default:
		return plan.JoinInner
	}
}

// resolveSide resolves name among the given rels only.
func resolveSide(scope *Scope, rels []*Rel, name string) (plan.Expr, error) {
	for _, rel := range rels {
		for i, col := range rel.Cols {
			if strings.EqualFold(col.Name, name) {
				return &plan.ColRef{Index: rel.Offset + i, Name: col.Name, Typ: col.Typ}, nil
			}
		}
	}
	return nil, errors.New("not found on this side of the join")
}

// shiftLeft rebases a full-row ColRef expression to the right input's
// local row (subtracting the left width).
func shiftLeft(e plan.Expr, leftWidth int) plan.Expr {
	return plan.SubstituteCols(e, func(c *plan.ColRef) (plan.Expr, bool) {
		return &plan.ColRef{Index: c.Index - leftWidth, Name: c.Name, Typ: c.Typ}, true
	})
}

func naturalColumns(left, right []*Rel) []string {
	var out []string
	seen := map[string]bool{}
	for _, lr := range left {
		for _, lc := range lr.Cols {
			if lc.Measure != nil {
				continue
			}
			name := strings.ToLower(lc.Name)
			if seen[name] {
				continue
			}
			for _, rr := range right {
				for _, rc := range rr.Cols {
					if strings.EqualFold(rc.Name, lc.Name) && rc.Measure == nil {
						out = append(out, lc.Name)
						seen[name] = true
					}
				}
			}
		}
	}
	return out
}

// splitEquiConds decomposes a join condition into hashable equality pairs
// (left expr = right expr, each referencing only its side) plus a
// residual predicate over the combined row.
func splitEquiConds(cond plan.Expr, leftWidth int) (equiL, equiR []plan.Expr, residual plan.Expr) {
	conjuncts := splitConjuncts(cond)
	for _, c := range conjuncts {
		call, ok := c.(*plan.Call)
		if ok && call.Name == "=" && len(call.Args) == 2 {
			l, r := call.Args[0], call.Args[1]
			lSide, lOK := sideOf(l, leftWidth)
			rSide, rOK := sideOf(r, leftWidth)
			if lOK && rOK && lSide != rSide {
				if lSide == 1 { // swap so left expr is first
					l, r = r, l
				}
				equiL = append(equiL, l)
				equiR = append(equiR, shiftLeft(r, leftWidth))
				continue
			}
		}
		if residual == nil {
			residual = c
		} else {
			residual = &plan.And{L: residual, R: c}
		}
	}
	return equiL, equiR, residual
}

// sideOf reports which side of the join e references: 0 = left, 1 =
// right; ok is false if it references both, neither, or outer rows.
func sideOf(e plan.Expr, leftWidth int) (side int, ok bool) {
	sawLeft, sawRight, bad := false, false, false
	plan.WalkExprs(e, func(x plan.Expr) {
		switch x := x.(type) {
		case *plan.ColRef:
			if x.Index < leftWidth {
				sawLeft = true
			} else {
				sawRight = true
			}
		case *plan.CorrRef, *plan.Subquery:
			bad = true
		}
	})
	if bad || sawLeft == sawRight {
		return 0, false
	}
	if sawRight {
		return 1, true
	}
	return 0, true
}

// splitConjuncts flattens a conjunction into its AND-ed parts.
func splitConjuncts(e plan.Expr) []plan.Expr {
	if and, ok := e.(*plan.And); ok {
		return append(splitConjuncts(and.L), splitConjuncts(and.R)...)
	}
	return []plan.Expr{e}
}

func requireBool(e plan.Expr, what string) error {
	k := e.Type().Kind
	if k != sqltypes.KindBool && k != sqltypes.KindUnknown {
		return fmt.Errorf("%s must be boolean, got %s", what, e.Type())
	}
	return nil
}
