package optimizer_test

// WinMagic is tested end-to-end through the engine: the rewrite must (a)
// fire on the paper's Listing 12 shapes, (b) preserve results exactly —
// including NULL correlation keys, where PARTITION BY and `=` differ —
// and (c) bail out on shapes it cannot prove safe.

import (
	"strings"
	"testing"

	"github.com/measures-sql/msql/internal/datagen"
	"github.com/measures-sql/msql/msql"
)

func loadNullable(t testing.TB) *msql.DB {
	t.Helper()
	db := msql.Open()
	db.MustExec(datagen.SetupSQL)
	ds := datagen.Generate(datagen.Config{
		Seed: 21, Customers: 20, Products: 5, Orders: 800, Years: 2,
		NullProductFraction: 0.1,
	})
	if err := db.InsertRows("Customers", ds.Customers); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertRows("Orders", ds.Orders); err != nil {
		t.Fatal(err)
	}
	return db
}

func resultSig(t *testing.T, db *msql.DB, sql string) string {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("%v\nSQL: %s", err, sql)
	}
	var sb strings.Builder
	for _, row := range res.Rows {
		for _, v := range row {
			sb.WriteString(v.String())
			sb.WriteByte('|')
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

const correlatedAboveAvg = `
	SELECT o.prodName, o.orderDate, o.revenue
	FROM Orders AS o
	WHERE o.revenue > (SELECT AVG(revenue) FROM Orders AS o1
	                   WHERE o1.prodName = o.prodName)
	ORDER BY 1, 2, 3`

func TestWinMagicFires(t *testing.T) {
	db := loadNullable(t)
	out, err := db.Explain(correlatedAboveAvg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Window") {
		t.Fatalf("WinMagic did not fire:\n%s", out)
	}
	if strings.Contains(out, "subquery") {
		t.Fatalf("subquery survived the rewrite:\n%s", out)
	}
}

// The critical soundness case: with NULL correlation keys, the rewritten
// query must match the naive evaluation (NULL-key rows are dropped by
// `=` correlation even though PARTITION BY would group them).
func TestWinMagicNullKeySoundness(t *testing.T) {
	fast := loadNullable(t)
	slow := loadNullable(t)
	slow.SetStrategy(msql.StrategyMemo) // WinMagic off, semantics identical to naive
	if resultSig(t, fast, correlatedAboveAvg) != resultSig(t, slow, correlatedAboveAvg) {
		t.Error("WinMagic changed results under NULL correlation keys")
	}
	// COUNT over the empty set is 0, not NULL — the guard must use the
	// aggregate's own empty value.
	countQ := `
		SELECT o.prodName, o.revenue
		FROM Orders AS o
		WHERE (SELECT COUNT(*) FROM Orders AS o1 WHERE o1.prodName = o.prodName) >= 0
		  AND o.revenue > 95
		ORDER BY 1, 2`
	if resultSig(t, fast, countQ) != resultSig(t, slow, countQ) {
		t.Error("COUNT empty-value guard is wrong")
	}
}

// Measure row-site evaluation (Listing 12 query 4) rewrites too: the
// measure's base aligns with the derived table through the projection.
func TestWinMagicOnMeasureForm(t *testing.T) {
	db := loadNullable(t)
	measureForm := `
		SELECT o.prodName, o.orderDate, o.revenue
		FROM (SELECT prodName, orderDate, revenue,
		             AVG(revenue) AS MEASURE avgRevenue
		      FROM Orders) AS o
		WHERE o.revenue > o.avgRevenue AT (WHERE prodName = o.prodName)
		ORDER BY 1, 2, 3`
	out, err := db.Explain(measureForm)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Window") {
		t.Fatalf("measure form did not rewrite:\n%s", out)
	}
	if resultSig(t, db, measureForm) != resultSig(t, db, correlatedAboveAvg) {
		t.Error("measure form disagrees with correlated form")
	}
}

// Shapes the rule must NOT touch.
func TestWinMagicBailsOut(t *testing.T) {
	db := loadNullable(t)
	bails := []string{
		// DISTINCT aggregate.
		`SELECT o.revenue FROM Orders AS o
		 WHERE o.revenue > (SELECT COUNT(DISTINCT revenue) FROM Orders AS o1
		                    WHERE o1.prodName = o.prodName)`,
		// Extra non-correlation predicate inside the subquery.
		`SELECT o.revenue FROM Orders AS o
		 WHERE o.revenue > (SELECT AVG(revenue) FROM Orders AS o1
		                    WHERE o1.prodName = o.prodName AND o1.cost > 10)`,
		// Different relation.
		`SELECT o.revenue FROM Orders AS o
		 WHERE o.revenue > (SELECT AVG(custAge) FROM Customers AS c
		                    WHERE c.custName = o.custName)`,
		// Inequality correlation.
		`SELECT o.revenue FROM Orders AS o
		 WHERE o.revenue > (SELECT AVG(revenue) FROM Orders AS o1
		                    WHERE o1.revenue < o.revenue)`,
	}
	for _, sql := range bails {
		out, err := db.Explain(sql)
		if err != nil {
			t.Fatalf("%v\nSQL: %s", err, sql)
		}
		if !strings.Contains(out, "subquery") {
			t.Errorf("rule should have bailed out:\n%s\nSQL: %s", out, sql)
		}
		// And the query still runs.
		if _, err := db.Query(sql); err != nil {
			t.Errorf("bailed query fails to run: %v", err)
		}
	}
}
