package optimizer

import (
	"github.com/measures-sql/msql/internal/plan"
)

// Predicate pushdown: move Filter conjuncts toward the data. Three
// rewrites, applied to fixpoint:
//
//	Filter(Filter(X))          → Filter(X) with merged predicate
//	Filter(Project(X))         → Project(Filter'(X)) when every column the
//	                             predicate reads maps through projection
//	                             expressions (substituted in)
//	Filter(InnerJoin(L, R))    → conjuncts that read only one side move
//	                             into that side
//
// Outer joins keep their filters (null-extended rows make pushing
// unsound in general), and predicates containing subqueries stay put to
// avoid duplicating their evaluation.
func pushDown(n plan.Node, rep *Report) plan.Node {
	switch n := n.(type) {
	case *plan.Filter:
		return pushFilter(n, rep)
	default:
		return copyWithChildren(n, func(c plan.Node) plan.Node { return pushDown(c, rep) })
	}
}

func pushFilter(f *plan.Filter, rep *Report) plan.Node {
	input := pushDown(f.Input, rep)
	pred := f.Pred

	for {
		switch in := input.(type) {
		case *plan.Filter:
			pred = &plan.And{L: in.Pred, R: pred}
			input = in.Input
			continue

		case *plan.Project:
			sub, ok := substituteThroughProject(pred, in)
			if !ok {
				return &plan.Filter{Input: input, Pred: pred}
			}
			rep.FilterPushdowns += len(splitConj(pred))
			inner := pushFilter(&plan.Filter{Input: in.Input, Pred: sub}, rep)
			c := *in
			c.Input = inner
			return &c

		case *plan.Join:
			if in.Kind != plan.JoinInner && in.Kind != plan.JoinCross {
				return &plan.Filter{Input: input, Pred: pred}
			}
			leftWidth := len(in.Left.Schema().Cols)
			totalWidth := leftWidth + len(in.Right.Schema().Cols)
			var leftPreds, rightPreds, keep []plan.Expr
			for _, conj := range splitConj(pred) {
				side, pushable := conjunctSide(conj, leftWidth, totalWidth)
				switch {
				case !pushable:
					keep = append(keep, conj)
				case side == 0:
					leftPreds = append(leftPreds, conj)
				case side == 1:
					rightPreds = append(rightPreds, shiftToRight(conj, leftWidth))
				default:
					keep = append(keep, conj)
				}
			}
			if len(leftPreds) == 0 && len(rightPreds) == 0 {
				return &plan.Filter{Input: input, Pred: pred}
			}
			rep.FilterPushdowns += len(leftPreds) + len(rightPreds)
			c := *in
			if len(leftPreds) > 0 {
				c.Left = pushFilter(&plan.Filter{Input: in.Left, Pred: conjoin(leftPreds)}, rep)
			}
			if len(rightPreds) > 0 {
				c.Right = pushFilter(&plan.Filter{Input: in.Right, Pred: conjoin(rightPreds)}, rep)
			}
			if len(keep) == 0 {
				return &c
			}
			return &plan.Filter{Input: &c, Pred: conjoin(keep)}

		default:
			return &plan.Filter{Input: input, Pred: pred}
		}
	}
}

func conjoin(preds []plan.Expr) plan.Expr {
	out := preds[0]
	for _, p := range preds[1:] {
		out = &plan.And{L: out, R: p}
	}
	return out
}

// substituteThroughProject rewrites pred (over the projection's output)
// to read the projection's input. Fails when the predicate contains a
// subquery (avoid re-evaluating it in a larger row set... it is the same
// row count, but the correlation memo keys would change shape) or reads
// a projected expression that is itself a subquery.
func substituteThroughProject(pred plan.Expr, proj *plan.Project) (plan.Expr, bool) {
	ok := true
	plan.WalkExprs(pred, func(e plan.Expr) {
		if _, is := e.(*plan.Subquery); is {
			ok = false
		}
	})
	if !ok {
		return nil, false
	}
	out := plan.TransformExpr(pred, func(e plan.Expr) plan.Expr {
		cr, is := e.(*plan.ColRef)
		if !is {
			return e
		}
		if cr.Index < 0 || cr.Index >= len(proj.Exprs) {
			ok = false
			return e
		}
		repl := proj.Exprs[cr.Index].Expr
		if _, isSub := repl.(*plan.Subquery); isSub {
			ok = false
		}
		return repl
	})
	if !ok {
		return nil, false
	}
	return out, true
}

// conjunctSide classifies which join side a conjunct reads: 0 left,
// 1 right, -1 both/none. Subqueries make it non-pushable (their memo
// dependencies are computed against the full row).
func conjunctSide(e plan.Expr, leftWidth, totalWidth int) (side int, pushable bool) {
	sawLeft, sawRight, sawSub := false, false, false
	plan.WalkExprs(e, func(x plan.Expr) {
		switch x := x.(type) {
		case *plan.ColRef:
			if x.Index < leftWidth {
				sawLeft = true
			} else if x.Index < totalWidth {
				sawRight = true
			}
		case *plan.Subquery:
			sawSub = true
		}
	})
	if sawSub || sawLeft == sawRight {
		return -1, false
	}
	if sawLeft {
		return 0, true
	}
	return 1, true
}

func shiftToRight(e plan.Expr, leftWidth int) plan.Expr {
	return plan.SubstituteCols(e, func(c *plan.ColRef) (plan.Expr, bool) {
		return &plan.ColRef{Index: c.Index - leftWidth, Name: c.Name, Typ: c.Typ}, true
	})
}
