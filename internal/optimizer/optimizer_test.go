package optimizer

import (
	"strings"
	"testing"

	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

func intT() sqltypes.Type { return sqltypes.Type{Kind: sqltypes.KindInt} }

func lit(i int64) *plan.Lit { return &plan.Lit{Val: sqltypes.NewInt(i)} }

func TestConstantFolding(t *testing.T) {
	// (1 + 2) * 3 folds to 9; a column reference blocks folding above it.
	inner := &plan.Call{Name: "+", Args: []plan.Expr{lit(1), lit(2)}, Typ: intT()}
	outer := &plan.Call{Name: "*", Args: []plan.Expr{inner, lit(3)}, Typ: intT()}
	node := &plan.Filter{
		Input: &plan.Values{Sch: &plan.Schema{}},
		Pred: &plan.Call{Name: "=", Typ: sqltypes.Type{Kind: sqltypes.KindBool},
			Args: []plan.Expr{outer, &plan.ColRef{Index: 0, Name: "x", Typ: intT()}}},
	}
	opt := Optimize(node, Options{FoldConstants: true, MemoizeSubqueries: true})
	pred := opt.(*plan.Filter).Pred.String()
	if !strings.Contains(pred, "9") || strings.Contains(pred, "+") {
		t.Errorf("constant not folded: %s", pred)
	}
	if !strings.Contains(pred, "$0:x") {
		t.Errorf("column lost: %s", pred)
	}

	// Folding off leaves the tree alone.
	raw := Optimize(node, Options{FoldConstants: false, MemoizeSubqueries: true})
	if !strings.Contains(raw.(*plan.Filter).Pred.String(), "+") {
		t.Error("folding ran despite being disabled")
	}
}

func TestFoldingDoesNotHideErrors(t *testing.T) {
	// SQRT(-1) errors at runtime; folding must leave it in place rather
	// than panic or swallow the expression.
	bad := &plan.Call{Name: "SQRT", Args: []plan.Expr{lit(-1)}, Typ: sqltypes.Type{Kind: sqltypes.KindFloat}}
	node := &plan.Filter{Input: &plan.Values{Sch: &plan.Schema{}},
		Pred: &plan.Call{Name: ">", Typ: sqltypes.Type{Kind: sqltypes.KindBool}, Args: []plan.Expr{bad, lit(0)}}}
	opt := Optimize(node, DefaultOptions())
	if !strings.Contains(opt.(*plan.Filter).Pred.String(), "SQRT") {
		t.Error("failed fold should keep the original call")
	}
}

func TestMemoStripping(t *testing.T) {
	sub := &plan.Subquery{
		Plan: &plan.Values{Sch: &plan.Schema{Cols: []plan.Col{{Name: "v", Typ: intT()}}}},
		Mode: plan.SubScalar,
		Typ:  intT(),
		Memo: true,
	}
	node := &plan.Filter{
		Input: &plan.Values{Sch: &plan.Schema{}},
		Pred: &plan.Call{Name: "=", Typ: sqltypes.Type{Kind: sqltypes.KindBool},
			Args: []plan.Expr{sub, lit(1)}},
	}
	stripped := Optimize(node, Options{FoldConstants: false, MemoizeSubqueries: false})
	found := false
	plan.WalkExprs(stripped.(*plan.Filter).Pred, func(e plan.Expr) {
		if sq, ok := e.(*plan.Subquery); ok {
			found = true
			if sq.Memo {
				t.Error("memo flag should be stripped")
			}
		}
	})
	if !found {
		t.Fatal("subquery lost")
	}
	// And the original is untouched (copy-on-write).
	if !sub.Memo {
		t.Error("original plan mutated")
	}
}

func TestPushDownThroughProject(t *testing.T) {
	base := &plan.Values{Sch: &plan.Schema{Cols: []plan.Col{{Name: "a", Typ: intT()}}}}
	proj := &plan.Project{
		Input: base,
		Exprs: []plan.NamedExpr{{
			Expr: &plan.Call{Name: "+", Args: []plan.Expr{&plan.ColRef{Index: 0, Name: "a", Typ: intT()}, lit(1)}, Typ: intT()},
			Col:  plan.Col{Name: "b", Typ: intT()},
		}},
		Sch: &plan.Schema{Cols: []plan.Col{{Name: "b", Typ: intT()}}},
	}
	f := &plan.Filter{Input: proj, Pred: &plan.Call{
		Name: ">", Typ: sqltypes.Type{Kind: sqltypes.KindBool},
		Args: []plan.Expr{&plan.ColRef{Index: 0, Name: "b", Typ: intT()}, lit(5)},
	}}
	out := Optimize(f, Options{PushDownFilters: true})
	top, ok := out.(*plan.Project)
	if !ok {
		t.Fatalf("filter should sink below the projection, top is %T", out)
	}
	inner, ok := top.Input.(*plan.Filter)
	if !ok {
		t.Fatalf("missing pushed filter, got %T", top.Input)
	}
	if !strings.Contains(inner.Pred.String(), "+($0:a, 1)") {
		t.Errorf("predicate not substituted: %s", inner.Pred)
	}
}

func TestPushDownIntoInnerJoin(t *testing.T) {
	mk := func(name string) *plan.Values {
		return &plan.Values{Sch: &plan.Schema{Cols: []plan.Col{{Name: name, Typ: intT()}}}}
	}
	join := &plan.Join{
		Kind: plan.JoinInner, Left: mk("l"), Right: mk("r"),
		EquiLeft:  []plan.Expr{&plan.ColRef{Index: 0, Name: "l", Typ: intT()}},
		EquiRight: []plan.Expr{&plan.ColRef{Index: 0, Name: "r", Typ: intT()}},
		Sch:       &plan.Schema{Cols: []plan.Col{{Name: "l", Typ: intT()}, {Name: "r", Typ: intT()}}},
	}
	boolT := sqltypes.Type{Kind: sqltypes.KindBool}
	pred := &plan.And{
		L: &plan.Call{Name: ">", Typ: boolT, Args: []plan.Expr{&plan.ColRef{Index: 0, Name: "l", Typ: intT()}, lit(1)}},
		R: &plan.Call{Name: "<", Typ: boolT, Args: []plan.Expr{&plan.ColRef{Index: 1, Name: "r", Typ: intT()}, lit(9)}},
	}
	out := Optimize(&plan.Filter{Input: join, Pred: pred}, Options{PushDownFilters: true})
	j, ok := out.(*plan.Join)
	if !ok {
		t.Fatalf("both conjuncts should push, leaving the join on top; got %T", out)
	}
	lf, ok := j.Left.(*plan.Filter)
	if !ok || !strings.Contains(lf.Pred.String(), "$0:l") {
		t.Errorf("left side filter: %v", j.Left)
	}
	rf, ok := j.Right.(*plan.Filter)
	if !ok || !strings.Contains(rf.Pred.String(), "$0:r") {
		t.Errorf("right side filter should rebase the column: %v", j.Right)
	}
}

func TestPushDownRespectsOuterJoin(t *testing.T) {
	mk := func(name string) *plan.Values {
		return &plan.Values{Sch: &plan.Schema{Cols: []plan.Col{{Name: name, Typ: intT()}}}}
	}
	join := &plan.Join{
		Kind: plan.JoinLeft, Left: mk("l"), Right: mk("r"),
		Sch: &plan.Schema{Cols: []plan.Col{{Name: "l", Typ: intT()}, {Name: "r", Typ: intT()}}},
	}
	pred := &plan.IsNull{X: &plan.ColRef{Index: 1, Name: "r", Typ: intT()}}
	out := Optimize(&plan.Filter{Input: join, Pred: pred}, Options{PushDownFilters: true})
	if _, ok := out.(*plan.Filter); !ok {
		t.Fatalf("filter over LEFT JOIN must stay put, got %T", out)
	}
}
