// Package optimizer applies rule-based rewrites to logical plans. Each
// rule can be switched off independently, which the benchmark harness
// uses for ablations of the paper's execution-strategy claims (§5.1,
// §6.4).
package optimizer

import (
	"context"

	"github.com/measures-sql/msql/internal/exec"
	"github.com/measures-sql/msql/internal/fn"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// Options selects which rules run.
type Options struct {
	// FoldConstants evaluates constant scalar subexpressions at plan time.
	FoldConstants bool
	// MemoizeSubqueries keeps the Memo flag on correlated subqueries
	// (the localized self-join strategy). When false the flag is
	// stripped, forcing naive per-row re-evaluation.
	MemoizeSubqueries bool
	// InlineMeasures rewrites a measure subquery into plain aggregate
	// calls of the enclosing Aggregate when the evaluation context is
	// exactly the group partition (paper §6.4 "in simple cases it may be
	// valid to inline the measure definition").
	InlineMeasures bool
	// WinMagic rewrites correlated scalar aggregate subqueries over the
	// outer query's own relation into window aggregates (paper §5.1;
	// Zuzarte et al. 2003). See winmagic.go for the soundness guards.
	WinMagic bool
	// PushDownFilters moves filter conjuncts below projections and into
	// the sides of inner joins.
	PushDownFilters bool
}

// DefaultOptions enables every rule.
func DefaultOptions() Options {
	return Options{
		FoldConstants:     true,
		MemoizeSubqueries: true,
		InlineMeasures:    true,
		WinMagic:          true,
		PushDownFilters:   true,
	}
}

// Report counts which rewrites fired during one Optimize pass, feeding
// the query-lifecycle tracer's "optimize" spans.
type Report struct {
	// WinMagicRewrites counts correlated aggregate subqueries rewritten
	// into window aggregates.
	WinMagicRewrites int
	// FilterPushdowns counts filter conjuncts moved below a projection or
	// into a join side.
	FilterPushdowns int
	// ConstantsFolded counts constant subexpressions replaced by literals.
	ConstantsFolded int
	// MemoStripped counts subqueries whose Memo flag was removed (naive
	// strategy only).
	MemoStripped int
}

// Optimize rewrites the plan according to opts. (InlineMeasures is
// consumed by the binder, which has the semantic information the rule
// needs; it is carried here so one options struct controls the whole
// strategy surface.)
func Optimize(n plan.Node, opts Options) plan.Node {
	n, _ = OptimizeWithReport(n, opts)
	return n
}

// OptimizeWithReport rewrites the plan and reports which rules fired.
func OptimizeWithReport(n plan.Node, opts Options) (plan.Node, Report) {
	return OptimizeWithReportContext(context.Background(), n, opts)
}

// OptimizeWithReportContext is OptimizeWithReport with cooperative
// cancellation: once ctx is done, remaining rules are skipped. Every
// rewrite is optional — the unoptimized plan is equally correct — so
// bailing between rules is sound, and the executor surfaces the
// cancellation error immediately afterwards.
func OptimizeWithReportContext(ctx context.Context, n plan.Node, opts Options) (plan.Node, Report) {
	var rep Report
	if opts.WinMagic && ctx.Err() == nil {
		n = winMagic(n, &rep)
	}
	if opts.PushDownFilters && ctx.Err() == nil {
		n = pushDown(n, &rep)
	}
	if ctx.Err() != nil {
		return n, rep
	}
	if opts.FoldConstants {
		n = plan.TransformNodeExprs(n, func(e plan.Expr, _ int) plan.Expr {
			out := foldConstant(e)
			if out != e {
				rep.ConstantsFolded++
			}
			return out
		})
	}
	if !opts.MemoizeSubqueries {
		n = plan.TransformNodeExprs(n, func(e plan.Expr, _ int) plan.Expr {
			if sq, ok := e.(*plan.Subquery); ok && sq.Memo {
				c := *sq
				c.Memo = false
				rep.MemoStripped++
				return &c
			}
			return e
		})
	}
	return n, rep
}

// foldConstant evaluates calls whose arguments are all literals. It is
// applied bottom-up by TransformNodeExprs, so nested constant trees
// collapse fully. Volatile calls (RANDOM) are never folded: folding
// would freeze one drawn value into the plan — observably wrong per
// row, and doubly so for a cached plan reused across executions.
func foldConstant(e plan.Expr) plan.Expr {
	call, ok := e.(*plan.Call)
	if !ok {
		return e
	}
	if sc, ok := fn.LookupScalar(call.Name); ok && sc.Volatile {
		return e
	}
	for _, a := range call.Args {
		if _, isLit := a.(*plan.Lit); !isLit {
			return e
		}
	}
	rows, err := exec.Run(&plan.Project{
		Input: &plan.Values{Rows: [][]plan.Expr{{}}, Sch: &plan.Schema{}},
		Exprs: []plan.NamedExpr{{Expr: call, Col: plan.Col{Name: "c", Typ: call.Typ}}},
		Sch:   &plan.Schema{Cols: []plan.Col{{Name: "c", Typ: call.Typ}}},
	}, exec.DefaultSettings())
	if err != nil || len(rows) != 1 {
		return e
	}
	v := rows[0][0]
	if v.K == sqltypes.KindUnknown && !v.Null {
		return e
	}
	return &plan.Lit{Val: v}
}
