package optimizer

import (
	"github.com/measures-sql/msql/internal/fn"
	"github.com/measures-sql/msql/internal/plan"
	"github.com/measures-sql/msql/internal/sqltypes"
)

// WinMagic (Zuzarte et al., SIGMOD 2003; paper §5.1): rewrite a
// correlated scalar subquery that aggregates the same relation the outer
// query reads, correlated by equality on the same columns, into a window
// aggregate over the outer input. The paper observes that measures, OVER
// and such subqueries are three spellings of one computation; this rule
// makes the engine execute them the same way.
//
// Soundness notes:
//   - IS NOT DISTINCT FROM correlation (what measure expansion emits)
//     matches window PARTITION BY semantics exactly (NULL keys group).
//   - Plain `=` correlation drops NULL keys, so the rewritten value is
//     guarded: CASE WHEN key IS NULL THEN <aggregate over empty input>
//     ELSE <window value> END — COUNT gives 0, other aggregates NULL.
//   - DISTINCT or FILTER aggregates, extra predicates in the subquery,
//     and non-aligned plans all bail out (the subquery stays).

// winMagic rewrites eligible Filter nodes in the plan bottom-up,
// counting fired rewrites into rep.
func winMagic(n plan.Node, rep *Report) plan.Node {
	switch n := n.(type) {
	case *plan.Filter:
		c := *n
		c.Input = winMagic(n.Input, rep)
		return rewriteFilter(&c, rep)
	default:
		// Rewrite children generically via the copy helpers.
		return copyWithChildren(n, func(c plan.Node) plan.Node { return winMagic(c, rep) })
	}
}

// copyWithChildren shallow-copies n with f applied to each child.
func copyWithChildren(n plan.Node, f func(plan.Node) plan.Node) plan.Node {
	switch n := n.(type) {
	case *plan.Project:
		c := *n
		c.Input = f(n.Input)
		return &c
	case *plan.Aggregate:
		c := *n
		c.Input = f(n.Input)
		return &c
	case *plan.Sort:
		c := *n
		c.Input = f(n.Input)
		return &c
	case *plan.Limit:
		c := *n
		c.Input = f(n.Input)
		return &c
	case *plan.Distinct:
		c := *n
		c.Input = f(n.Input)
		return &c
	case *plan.Window:
		c := *n
		c.Input = f(n.Input)
		return &c
	case *plan.Join:
		c := *n
		c.Left = f(n.Left)
		c.Right = f(n.Right)
		return &c
	case *plan.SetOp:
		c := *n
		c.Left = f(n.Left)
		c.Right = f(n.Right)
		return &c
	default:
		return n
	}
}

// candidate describes one subquery eligible for the rewrite.
type candidate struct {
	sub      *plan.Subquery
	aggs     []plan.AggCall // args already over the outer row
	keys     []int          // outer-row partition key columns
	nullSafe bool           // correlation used IS NOT DISTINCT FROM
	formula  plan.Expr      // over aggregate outputs (AggRef-free ColRefs)
}

func rewriteFilter(f *plan.Filter, rep *Report) plan.Node {
	// Candidates are keyed by the subquery's Plan pointer: expression
	// transforms copy Subquery nodes but share the Plan.
	cands := map[plan.Node]*candidate{}
	plan.WalkExprs(f.Pred, func(e plan.Expr) {
		if sq, ok := e.(*plan.Subquery); ok {
			if c := matchCandidate(sq, f.Input); c != nil {
				cands[sq.Plan] = c
			}
		}
	})
	if len(cands) == 0 {
		return f
	}
	rep.WinMagicRewrites += len(cands)

	width := len(f.Input.Schema().Cols)
	var funcs []plan.WindowFunc
	// Per candidate: window column index of each of its aggregates.
	aggCols := map[plan.Node][]int{}
	for _, c := range cands {
		cols := make([]int, len(c.aggs))
		for i, call := range c.aggs {
			partition := make([]plan.Expr, len(c.keys))
			for k, idx := range c.keys {
				col := f.Input.Schema().Cols[idx]
				partition[k] = &plan.ColRef{Index: idx, Name: col.Name, Typ: col.Typ}
			}
			cols[i] = width + len(funcs)
			funcs = append(funcs, plan.WindowFunc{
				Name:        call.Name,
				Args:        call.Args,
				Star:        call.Star,
				PartitionBy: partition,
				Typ:         call.Typ,
			})
		}
		aggCols[c.sub.Plan] = cols
	}

	// Build the Window node and the rewritten predicate.
	winSch := &plan.Schema{Cols: append([]plan.Col{}, f.Input.Schema().Cols...)}
	for i, w := range funcs {
		winSch.Cols = append(winSch.Cols, plan.Col{Name: "win" + string(rune('0'+i%10)), Typ: w.Typ})
	}
	win := &plan.Window{Input: f.Input, Funcs: funcs, Sch: winSch}

	newPred := plan.TransformExpr(f.Pred, func(e plan.Expr) plan.Expr {
		sq, ok := e.(*plan.Subquery)
		if !ok {
			return e
		}
		c := cands[sq.Plan]
		if c == nil {
			return e
		}
		value := plan.TransformExpr(c.formula, func(x plan.Expr) plan.Expr {
			if ar, ok := x.(*plan.AggRef); ok {
				idx := aggCols[sq.Plan][ar.Index]
				return &plan.ColRef{Index: idx, Name: "win", Typ: ar.Typ}
			}
			return x
		})
		if c.nullSafe {
			return value
		}
		// `=` correlation: NULL keys see the aggregate of an empty input.
		var keyNull plan.Expr
		for _, idx := range c.keys {
			col := f.Input.Schema().Cols[idx]
			isNull := plan.Expr(&plan.IsNull{X: &plan.ColRef{Index: idx, Name: col.Name, Typ: col.Typ}})
			if keyNull == nil {
				keyNull = isNull
			} else {
				keyNull = &plan.Or{L: keyNull, R: isNull}
			}
		}
		emptyVal := plan.TransformExpr(c.formula, func(x plan.Expr) plan.Expr {
			if ar, ok := x.(*plan.AggRef); ok {
				return &plan.Lit{Val: emptyAggValue(c.aggs[ar.Index])}
			}
			return x
		})
		return &plan.Case{
			Whens: []plan.CaseWhen{{Cond: keyNull, Then: emptyVal}},
			Else:  value,
			Typ:   value.Type(),
		}
	})

	filtered := &plan.Filter{Input: win, Pred: newPred}
	// Strip the appended window columns so the schema is unchanged.
	exprs := make([]plan.NamedExpr, width)
	for i, col := range f.Input.Schema().Cols {
		exprs[i] = plan.NamedExpr{
			Expr: &plan.ColRef{Index: i, Name: col.Name, Typ: col.Typ},
			Col:  col,
		}
	}
	return &plan.Project{Input: filtered, Exprs: exprs, Sch: f.Input.Schema()}
}

// emptyAggValue is the value an aggregate takes over zero rows.
func emptyAggValue(call plan.AggCall) sqltypes.Value {
	def, ok := fn.LookupAgg(call.Name)
	if !ok {
		return sqltypes.Null(call.Typ.Kind)
	}
	types := make([]sqltypes.Type, len(call.Args))
	for i, a := range call.Args {
		types[i] = a.Type()
	}
	return def.New(types).Result()
}

// matchCandidate tests whether sq has the WinMagic shape against the
// outer input and, if so, returns the rewrite ingredients.
func matchCandidate(sq *plan.Subquery, outerInput plan.Node) *candidate {
	if sq.Mode != plan.SubScalar {
		return nil
	}
	proj, ok := sq.Plan.(*plan.Project)
	if !ok || len(proj.Exprs) != 1 {
		return nil
	}
	agg, ok := proj.Input.(*plan.Aggregate)
	if !ok || len(agg.Sets) != 1 || len(agg.Sets[0]) != 0 || len(agg.GroupExprs) != 0 {
		return nil
	}
	filter, ok := agg.Input.(*plan.Filter)
	if !ok {
		return nil
	}

	// Align the subquery's base with the outer input.
	remap, ok := alignPlans(filter.Input, outerInput)
	if !ok {
		return nil
	}

	// The correlation predicate: conjunction of equality terms between a
	// base column and the aligned outer column, all at level 1.
	var keys []int
	nullSafe := true
	for _, term := range splitConj(filter.Pred) {
		var l, r plan.Expr
		switch term := term.(type) {
		case *plan.IsDistinct:
			if !term.Neg {
				return nil
			}
			l, r = term.L, term.R
		case *plan.Call:
			if term.Name != "=" || len(term.Args) != 2 {
				return nil
			}
			l, r = term.Args[0], term.Args[1]
			nullSafe = false
		default:
			return nil
		}
		base, corr := l, r
		if _, isCorr := base.(*plan.CorrRef); isCorr {
			base, corr = corr, base
		}
		bc, ok := base.(*plan.ColRef)
		if !ok {
			return nil
		}
		cc, ok := corr.(*plan.CorrRef)
		if !ok || cc.Levels != 1 {
			return nil
		}
		mapped, ok := remap[bc.Index]
		if !ok || mapped != cc.Index {
			return nil
		}
		keys = append(keys, cc.Index)
	}
	if len(keys) == 0 {
		return nil
	}

	// Aggregates: plain, with args expressible over the outer row.
	aggs := make([]plan.AggCall, len(agg.Aggs))
	for i, call := range agg.Aggs {
		if call.Distinct || call.Filter != nil || call.Name == "GROUPING" {
			return nil
		}
		okArgs := true
		args := make([]plan.Expr, len(call.Args))
		for j, a := range call.Args {
			args[j] = plan.TransformExpr(a, func(x plan.Expr) plan.Expr {
				switch x := x.(type) {
				case *plan.ColRef:
					if idx, found := remap[x.Index]; found {
						return &plan.ColRef{Index: idx, Name: x.Name, Typ: x.Typ}
					}
					okArgs = false
				case *plan.CorrRef, *plan.Subquery:
					okArgs = false
				}
				return x
			})
		}
		if !okArgs {
			return nil
		}
		call.Args = args
		aggs[i] = call
	}

	// The projected formula references aggregate outputs as ColRefs
	// (BuildMeasureSubquery) — normalize them to AggRefs; anything else
	// over the aggregate output row bails.
	formulaOK := true
	formula := plan.TransformExpr(proj.Exprs[0].Expr, func(x plan.Expr) plan.Expr {
		switch x := x.(type) {
		case *plan.ColRef:
			if x.Index < len(aggs) {
				return &plan.AggRef{Index: x.Index, Typ: x.Typ}
			}
			formulaOK = false
		case *plan.CorrRef, *plan.Subquery:
			formulaOK = false
		}
		return x
	})
	if !formulaOK {
		return nil
	}

	// No other correlations may escape the subquery.
	if extraCorrelations(sq, len(keys)) {
		return nil
	}

	return &candidate{sub: sq, aggs: aggs, keys: keys, nullSafe: nullSafe, formula: formula}
}

// extraCorrelations reports whether sq depends on outer rows beyond the
// nKeys correlation terms already accounted for.
func extraCorrelations(sq *plan.Subquery, nKeys int) bool {
	count := 0
	bad := false
	var walkNode func(n plan.Node, depth int)
	walkNode = func(n plan.Node, depth int) {
		plan.VisitNodeExprs(n, func(e plan.Expr) {
			plan.WalkExprs(e, func(x plan.Expr) {
				switch x := x.(type) {
				case *plan.CorrRef:
					if x.Levels == depth {
						count++
					} else if x.Levels > depth {
						bad = true
					}
				case *plan.Subquery:
					walkNode(x.Plan, depth+1)
				}
			})
		})
		for _, c := range n.Children() {
			walkNode(c, depth)
		}
	}
	walkNode(sq.Plan, 1)
	return bad || count != nKeys
}

// alignPlans checks that base (the subquery's relation) and outer (the
// outer query's input) read the same rows, and returns a mapping from
// base-row column indexes to outer-row column indexes.
//
// Shapes supported: identical plans (identity mapping), and outer =
// Project(X) with base aligned to X through bare-column projections.
func alignPlans(base, outer plan.Node) (map[int]int, bool) {
	if plansIdentical(base, outer) {
		m := map[int]int{}
		for i := range base.Schema().Cols {
			m[i] = i
		}
		return m, true
	}
	if proj, ok := outer.(*plan.Project); ok {
		inner, ok := alignPlans(base, proj.Input)
		if !ok {
			return nil, false
		}
		// outer col k = proj.Exprs[k]; usable when it is a bare column of
		// the projection input.
		m := map[int]int{}
		for k, ne := range proj.Exprs {
			if cr, ok := ne.Expr.(*plan.ColRef); ok {
				for baseIdx, innerIdx := range inner {
					if innerIdx == cr.Index {
						if _, dup := m[baseIdx]; !dup {
							m[baseIdx] = k
						}
					}
				}
			}
		}
		if len(m) == 0 {
			return nil, false
		}
		return m, true
	}
	return nil, false
}

// plansIdentical is a conservative structural equality: same operators,
// same expressions (by string), same scan sources.
func plansIdentical(a, b plan.Node) bool {
	switch a := a.(type) {
	case *plan.Scan:
		b, ok := b.(*plan.Scan)
		return ok && a.Source == b.Source
	case *plan.Filter:
		b, ok := b.(*plan.Filter)
		return ok && a.Pred.String() == b.Pred.String() && plansIdentical(a.Input, b.Input)
	case *plan.Project:
		b, ok := b.(*plan.Project)
		if !ok || len(a.Exprs) != len(b.Exprs) {
			return false
		}
		for i := range a.Exprs {
			if a.Exprs[i].Expr.String() != b.Exprs[i].Expr.String() {
				return false
			}
		}
		return plansIdentical(a.Input, b.Input)
	default:
		return false
	}
}

func splitConj(e plan.Expr) []plan.Expr {
	if and, ok := e.(*plan.And); ok {
		return append(splitConj(and.L), splitConj(and.R)...)
	}
	return []plan.Expr{e}
}
