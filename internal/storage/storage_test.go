package storage

import (
	"testing"

	"github.com/measures-sql/msql/internal/sqltypes"
)

func newT(t *testing.T) *Table {
	t.Helper()
	return NewTable("t",
		[]string{"a", "b", "d"},
		[]sqltypes.Type{{Kind: sqltypes.KindInt}, {Kind: sqltypes.KindFloat}, {Kind: sqltypes.KindDate}})
}

func TestInsertAndScan(t *testing.T) {
	tbl := newT(t)
	err := tbl.Insert([][]sqltypes.Value{
		{sqltypes.NewInt(1), sqltypes.NewInt(2), sqltypes.NewString("2024-01-01")},
		{sqltypes.Null(sqltypes.KindUnknown), sqltypes.NewFloat(1.5), sqltypes.NewDate(2024, 2, 3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := tbl.Rows()
	if len(rows) != 2 || tbl.NumRows() != 2 {
		t.Fatalf("rows=%d", len(rows))
	}
	// INT 2 coerced to FLOAT in column b; string coerced to DATE.
	if rows[0][1].K != sqltypes.KindFloat || rows[0][1].F != 2 {
		t.Errorf("coercion to float failed: %v", rows[0][1])
	}
	if rows[0][2].K != sqltypes.KindDate || rows[0][2].String() != "2024-01-01" {
		t.Errorf("coercion to date failed: %v", rows[0][2])
	}
	if !rows[1][0].Null || rows[1][0].K != sqltypes.KindInt {
		t.Errorf("null retyping failed: %v", rows[1][0])
	}
}

func TestInsertErrors(t *testing.T) {
	tbl := newT(t)
	// Wrong arity.
	if err := tbl.Insert([][]sqltypes.Value{{sqltypes.NewInt(1)}}); err == nil {
		t.Error("short row should fail")
	}
	// Wrong type (string into int).
	err := tbl.Insert([][]sqltypes.Value{
		{sqltypes.NewString("x"), sqltypes.NewFloat(1), sqltypes.NewDate(2024, 1, 1)},
	})
	if err == nil {
		t.Error("string into INTEGER should fail")
	}
	// Non-integral float into int.
	err = tbl.Insert([][]sqltypes.Value{
		{sqltypes.NewFloat(1.5), sqltypes.NewFloat(1), sqltypes.NewDate(2024, 1, 1)},
	})
	if err == nil {
		t.Error("1.5 into INTEGER should fail")
	}
	// All-or-nothing: nothing inserted by the failed batches.
	if tbl.NumRows() != 0 {
		t.Errorf("failed inserts must not leave rows, got %d", tbl.NumRows())
	}
	// Integral float is fine.
	err = tbl.Insert([][]sqltypes.Value{
		{sqltypes.NewFloat(2), sqltypes.NewFloat(1), sqltypes.NewDate(2024, 1, 1)},
	})
	if err != nil || tbl.Rows()[0][0].I != 2 {
		t.Errorf("integral float insert: %v", err)
	}
}

func TestSnapshotStability(t *testing.T) {
	tbl := newT(t)
	seed := [][]sqltypes.Value{{sqltypes.NewInt(1), sqltypes.NewFloat(1), sqltypes.NewDate(2024, 1, 1)}}
	if err := tbl.Insert(seed); err != nil {
		t.Fatal(err)
	}
	snap := tbl.Rows()
	if err := tbl.Insert(seed); err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 {
		t.Errorf("snapshot grew after later insert: %d", len(snap))
	}
	tbl.Truncate()
	if tbl.NumRows() != 0 {
		t.Error("truncate failed")
	}
	if len(snap) != 1 {
		t.Error("snapshot must survive truncate")
	}
}
