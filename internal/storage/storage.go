// Package storage provides the in-memory row store backing base tables.
// It is deliberately simple — an append-only slice of rows guarded by a
// RWMutex — because the paper's contribution is language semantics, not
// storage; the executor treats it as a RowSource.
package storage

import (
	"fmt"
	"sync"

	"github.com/measures-sql/msql/internal/sqltypes"
)

// Table is an in-memory table: a fixed schema and a growing set of rows.
type Table struct {
	mu    sync.RWMutex
	name  string
	cols  []string
	types []sqltypes.Type
	rows  [][]sqltypes.Value
}

// NewTable creates an empty table.
func NewTable(name string, cols []string, types []sqltypes.Type) *Table {
	return &Table{name: name, cols: cols, types: types}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// ColNames returns the column names.
func (t *Table) ColNames() []string { return t.cols }

// ColTypes returns the column types.
func (t *Table) ColTypes() []sqltypes.Type { return t.types }

// NumRows returns the current row count.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Rows returns a snapshot slice of the rows. Callers must not mutate the
// returned rows; Insert never mutates previously returned slices, so a
// running scan stays consistent.
func (t *Table) Rows() [][]sqltypes.Value {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[:len(t.rows):len(t.rows)]
}

// Insert appends rows after coercing each value to the column type.
// All-or-nothing: on a type error no row is inserted.
func (t *Table) Insert(rows [][]sqltypes.Value) error {
	coerced, err := t.CoerceRows(rows)
	if err != nil {
		return err
	}
	t.InsertPrepared(coerced)
	return nil
}

// CoerceRows validates rows against the schema and returns a coerced
// copy without storing anything. The durability layer uses the split:
// coerce first, log exactly the values that will be stored, then apply
// with InsertPrepared — so a replayed log rebuilds the table
// byte-for-byte.
func (t *Table) CoerceRows(rows [][]sqltypes.Value) ([][]sqltypes.Value, error) {
	coerced := make([][]sqltypes.Value, len(rows))
	for i, row := range rows {
		if len(row) != len(t.cols) {
			return nil, fmt.Errorf("table %s has %d columns but %d values were supplied", t.name, len(t.cols), len(row))
		}
		out := make([]sqltypes.Value, len(row))
		for j, v := range row {
			c, err := coerce(v, t.types[j].Kind)
			if err != nil {
				return nil, fmt.Errorf("column %s of table %s: %v", t.cols[j], t.name, err)
			}
			out[j] = c
		}
		coerced[i] = out
	}
	return coerced, nil
}

// InsertPrepared appends rows previously returned by CoerceRows (or
// replayed from a log of such rows). It cannot fail: all validation
// happened at coercion time.
func (t *Table) InsertPrepared(rows [][]sqltypes.Value) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = append(t.rows, rows...)
}

// Truncate removes all rows.
func (t *Table) Truncate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = nil
}

// coerce converts v to kind where the conversion is implicit-safe
// (numeric widening, string-to-date for literals, NULL retyping).
func coerce(v sqltypes.Value, kind sqltypes.Kind) (sqltypes.Value, error) {
	if v.Null {
		return sqltypes.Null(kind), nil
	}
	if v.K == kind {
		return v, nil
	}
	switch {
	case kind == sqltypes.KindFloat && v.K == sqltypes.KindInt,
		kind == sqltypes.KindDate && v.K == sqltypes.KindString:
		return sqltypes.Cast(v, kind)
	case kind == sqltypes.KindInt && v.K == sqltypes.KindFloat:
		if v.F == float64(int64(v.F)) {
			return sqltypes.NewInt(int64(v.F)), nil
		}
		return sqltypes.Value{}, fmt.Errorf("cannot insert non-integral %v into INTEGER column", v)
	default:
		return sqltypes.Value{}, fmt.Errorf("cannot insert %s value into %s column", v.K, kind)
	}
}
