package parser

import (
	"strings"
	"testing"

	"github.com/measures-sql/msql/internal/ast"
)

func mustQuery(t *testing.T, src string) *ast.Query {
	t.Helper()
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}

func sel(t *testing.T, q *ast.Query) *ast.Select {
	t.Helper()
	s, ok := q.Body.(*ast.Select)
	if !ok {
		t.Fatalf("body is %T, want *ast.Select", q.Body)
	}
	return s
}

func TestSimpleSelect(t *testing.T) {
	q := mustQuery(t, "SELECT prodName, COUNT(*) AS c FROM Orders GROUP BY prodName")
	s := sel(t, q)
	if len(s.Items) != 2 {
		t.Fatalf("items = %d", len(s.Items))
	}
	if s.Items[1].Alias != "c" {
		t.Errorf("alias = %q", s.Items[1].Alias)
	}
	fc, ok := s.Items[1].Expr.(*ast.FuncCall)
	if !ok || !fc.Star || fc.Name != "COUNT" {
		t.Errorf("COUNT(*) parsed as %#v", s.Items[1].Expr)
	}
	if len(s.GroupBy) != 1 || s.GroupBy[0].Kind != ast.GroupExpr {
		t.Errorf("group by: %#v", s.GroupBy)
	}
}

func TestMeasureSyntax(t *testing.T) {
	q := mustQuery(t, `SELECT orderDate, prodName,
		(SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin
		FROM Orders`)
	s := sel(t, q)
	if !s.Items[2].Measure || s.Items[2].Alias != "profitMargin" {
		t.Errorf("AS MEASURE not parsed: %+v", s.Items[2])
	}
	// Non-measure aliases must not set the flag.
	if s.Items[0].Measure {
		t.Error("orderDate should not be a measure")
	}
}

func TestAtOperatorPrecedence(t *testing.T) {
	// AT binds tighter than '/': the paper's proportion-of-total query.
	e, err := ParseExpr("sumRevenue / sumRevenue AT (ALL prodName)")
	if err != nil {
		t.Fatal(err)
	}
	bin, ok := e.(*ast.Binary)
	if !ok || bin.Op != "/" {
		t.Fatalf("top is %#v, want division", e)
	}
	at, ok := bin.R.(*ast.At)
	if !ok {
		t.Fatalf("rhs is %T, want *ast.At", bin.R)
	}
	all, ok := at.Mods[0].(*ast.AtAll)
	if !ok || len(all.Dims) != 1 {
		t.Fatalf("modifier: %#v", at.Mods[0])
	}
}

func TestAtModifiers(t *testing.T) {
	e, err := ParseExpr("m AT (ALL VISIBLE SET orderYear = CURRENT orderYear - 1 WHERE x > 2)")
	if err != nil {
		t.Fatal(err)
	}
	at := e.(*ast.At)
	if len(at.Mods) != 4 {
		t.Fatalf("mods = %d: %#v", len(at.Mods), at.Mods)
	}
	if all := at.Mods[0].(*ast.AtAll); len(all.Dims) != 0 {
		t.Errorf("bare ALL should have no dims, got %v", all.Dims)
	}
	if _, ok := at.Mods[1].(*ast.AtVisible); !ok {
		t.Errorf("mods[1] = %#v", at.Mods[1])
	}
	set := at.Mods[2].(*ast.AtSet)
	// The SET value is CURRENT orderYear - 1: binary minus with Current LHS.
	bin, ok := set.Value.(*ast.Binary)
	if !ok || bin.Op != "-" {
		t.Fatalf("SET value = %#v", set.Value)
	}
	if _, ok := bin.L.(*ast.Current); !ok {
		t.Errorf("expected CURRENT, got %#v", bin.L)
	}
	if _, ok := at.Mods[3].(*ast.AtWhere); !ok {
		t.Errorf("mods[3] = %#v", at.Mods[3])
	}
}

func TestAtAllMultipleDims(t *testing.T) {
	e, err := ParseExpr("m AT (ALL a, b SET c = 1)")
	if err != nil {
		t.Fatal(err)
	}
	at := e.(*ast.At)
	all := at.Mods[0].(*ast.AtAll)
	if len(all.Dims) != 2 {
		t.Fatalf("dims = %#v", all.Dims)
	}
	if _, ok := at.Mods[1].(*ast.AtSet); !ok {
		t.Fatalf("mods[1] = %#v", at.Mods[1])
	}
}

func TestNestedAt(t *testing.T) {
	e, err := ParseExpr("m AT (VISIBLE) AT (ALL)")
	if err != nil {
		t.Fatal(err)
	}
	outer := e.(*ast.At)
	if _, ok := outer.Mods[0].(*ast.AtAll); !ok {
		t.Fatalf("outer mod = %#v", outer.Mods[0])
	}
	if _, ok := outer.X.(*ast.At); !ok {
		t.Fatalf("inner = %#v", outer.X)
	}
}

func TestRollup(t *testing.T) {
	q := mustQuery(t, "SELECT a FROM t GROUP BY ROLLUP(a, b), c")
	s := sel(t, q)
	if s.GroupBy[0].Kind != ast.GroupRollup || len(s.GroupBy[0].Exprs) != 2 {
		t.Errorf("rollup: %#v", s.GroupBy[0])
	}
	if s.GroupBy[1].Kind != ast.GroupExpr {
		t.Errorf("second item: %#v", s.GroupBy[1])
	}
}

func TestGroupingSets(t *testing.T) {
	q := mustQuery(t, "SELECT a FROM t GROUP BY GROUPING SETS((a, b), (a), ())")
	s := sel(t, q)
	g := s.GroupBy[0]
	if g.Kind != ast.GroupSets || len(g.Sets) != 3 {
		t.Fatalf("sets: %#v", g)
	}
	if len(g.Sets[0]) != 2 || len(g.Sets[1]) != 1 || len(g.Sets[2]) != 0 {
		t.Errorf("set sizes: %v %v %v", len(g.Sets[0]), len(g.Sets[1]), len(g.Sets[2]))
	}
}

func TestJoins(t *testing.T) {
	q := mustQuery(t, `SELECT * FROM Orders AS o
		JOIN EnhancedCustomers AS c USING (custName)
		LEFT JOIN x ON o.id = x.id`)
	s := sel(t, q)
	outer, ok := s.From.(*ast.JoinExpr)
	if !ok || outer.Kind != ast.JoinLeft {
		t.Fatalf("outer join: %#v", s.From)
	}
	inner, ok := outer.Left.(*ast.JoinExpr)
	if !ok || inner.Kind != ast.JoinInner || len(inner.Using) != 1 || inner.Using[0] != "custName" {
		t.Fatalf("inner join: %#v", outer.Left)
	}
}

func TestSubqueries(t *testing.T) {
	q := mustQuery(t, `SELECT (SELECT MAX(x) FROM t2), a
		FROM (SELECT * FROM t3) AS d
		WHERE EXISTS (SELECT 1 FROM t4) AND a IN (SELECT b FROM t5) AND c IN (1, 2)`)
	s := sel(t, q)
	if _, ok := s.Items[0].Expr.(*ast.ScalarSubquery); !ok {
		t.Errorf("scalar subquery: %#v", s.Items[0].Expr)
	}
	if _, ok := s.From.(*ast.SubqueryTable); !ok {
		t.Errorf("derived table: %#v", s.From)
	}
}

func TestSetOps(t *testing.T) {
	q := mustQuery(t, "SELECT a FROM t UNION ALL SELECT b FROM u INTERSECT SELECT c FROM v")
	op, ok := q.Body.(*ast.SetOp)
	if !ok || op.Op != "UNION" || !op.All {
		t.Fatalf("top: %#v", q.Body)
	}
	// INTERSECT binds tighter: right side is the INTERSECT.
	if r, ok := op.Right.(*ast.SetOp); !ok || r.Op != "INTERSECT" {
		t.Fatalf("right: %#v", op.Right)
	}
}

func TestWith(t *testing.T) {
	q := mustQuery(t, `WITH EnhancedCustomers AS (
		SELECT *, AVG(custAge) AS MEASURE avgAge FROM Customers)
		SELECT * FROM EnhancedCustomers`)
	if len(q.With) != 1 || q.With[0].Name != "EnhancedCustomers" {
		t.Fatalf("with: %#v", q.With)
	}
}

func TestWindow(t *testing.T) {
	e, err := ParseExpr("AVG(revenue) OVER (PARTITION BY prodName ORDER BY orderDate ROWS BETWEEN 1 PRECEDING AND CURRENT ROW)")
	if err != nil {
		t.Fatal(err)
	}
	fc := e.(*ast.FuncCall)
	if fc.Over == nil || len(fc.Over.PartitionBy) != 1 || len(fc.Over.OrderBy) != 1 {
		t.Fatalf("over: %#v", fc.Over)
	}
	if fc.Over.Frame == nil || fc.Over.Frame.Unit != "ROWS" || fc.Over.Frame.Start.Kind != ast.OffsetPreceding {
		t.Fatalf("frame: %#v", fc.Over.Frame)
	}
}

func TestFilterClause(t *testing.T) {
	e, err := ParseExpr("SUM(x) FILTER (WHERE y > 0)")
	if err != nil {
		t.Fatal(err)
	}
	fc := e.(*ast.FuncCall)
	if fc.Filter == nil {
		t.Fatal("filter missing")
	}
}

func TestIsPredicates(t *testing.T) {
	e, err := ParseExpr("a IS NOT DISTINCT FROM b AND c IS NULL AND d IS NOT NULL")
	if err != nil {
		t.Fatal(err)
	}
	and := e.(*ast.Binary)
	if and.Op != "AND" {
		t.Fatal("expected AND")
	}
}

func TestBetweenInLike(t *testing.T) {
	_, err := ParseExpr("a BETWEEN 1 AND 10 AND b NOT IN (1,2) AND c LIKE 'x%' AND d NOT LIKE 'y%' AND e NOT BETWEEN 2 AND 3")
	if err != nil {
		t.Fatal(err)
	}
}

func TestCaseExpr(t *testing.T) {
	e, err := ParseExpr("CASE WHEN a > 1 THEN 'big' ELSE 'small' END")
	if err != nil {
		t.Fatal(err)
	}
	c := e.(*ast.Case)
	if c.Operand != nil || len(c.Whens) != 1 || c.Else == nil {
		t.Fatalf("case: %#v", c)
	}
	e, err = ParseExpr("CASE x WHEN 1 THEN 'one' WHEN 2 THEN 'two' END")
	if err != nil {
		t.Fatal(err)
	}
	c = e.(*ast.Case)
	if c.Operand == nil || len(c.Whens) != 2 || c.Else != nil {
		t.Fatalf("simple case: %#v", c)
	}
}

func TestDDL(t *testing.T) {
	stmt, err := ParseStatement("CREATE TABLE Orders (prodName VARCHAR, revenue INTEGER, orderDate DATE)")
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*ast.CreateTable)
	if len(ct.Cols) != 3 || ct.Cols[2].TypeName != "DATE" {
		t.Fatalf("create table: %#v", ct)
	}
	stmt, err = ParseStatement("CREATE OR REPLACE VIEW v AS SELECT 1 AS x")
	if err != nil {
		t.Fatal(err)
	}
	cv := stmt.(*ast.CreateView)
	if !cv.OrReplace || cv.Name != "v" {
		t.Fatalf("create view: %#v", cv)
	}
	stmt, err = ParseStatement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*ast.Insert)
	if len(ins.Rows) != 2 || len(ins.Columns) != 2 {
		t.Fatalf("insert: %#v", ins)
	}
	if _, err := ParseStatement("DROP VIEW v"); err != nil {
		t.Fatal(err)
	}
}

func TestParseStatementsScript(t *testing.T) {
	stmts, err := ParseStatements(`
		CREATE TABLE t (a INTEGER);
		INSERT INTO t VALUES (1);
		SELECT * FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestDateLiteral(t *testing.T) {
	e, err := ParseExpr("DATE '2023-11-28'")
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := e.(*ast.DateLit); !ok || d.Val != "2023-11-28" {
		t.Fatalf("date literal: %#v", e)
	}
}

func TestNegativeNumberFolding(t *testing.T) {
	e, err := ParseExpr("-5")
	if err != nil {
		t.Fatal(err)
	}
	n, ok := e.(*ast.NumberLit)
	if !ok || !n.IsInt || n.Int != -5 {
		t.Fatalf("got %#v", e)
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT a FROM t WHERE",
		"SELECT a AT () FROM t",
		"SELECT m AT (BOGUS) FROM t",
		"CREATE NONSENSE x",
		"SELECT a FROM t GROUP BY ROLLUP a",
		"SELECT CASE END",
		"INSERT INTO",
	}
	for _, src := range bad {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
	// Error messages carry position info.
	_, err := ParseStatement("SELECT *\nFROM")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should mention line 2: %v", err)
	}
}

func TestPaperListingsParse(t *testing.T) {
	// Every query listing from the paper must parse.
	listings := []string{
		// Listing 1
		`SELECT prodName, COUNT(*) AS c,
		 (SUM(revenue) - SUM(cost)) / SUM(revenue) AS profitMargin
		 FROM Orders GROUP BY prodName`,
		// Listing 2
		`CREATE VIEW SummarizedOrders AS
		 SELECT prodName, orderDate,
		 (SUM(revenue) - SUM(cost)) / SUM(revenue) AS profitMargin
		 FROM Orders GROUP BY prodName, orderDate`,
		// Listing 3
		`CREATE VIEW EnhancedOrders AS
		 SELECT orderDate, prodName,
		 (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin
		 FROM Orders`,
		`SELECT prodName, AGGREGATE(profitMargin) FROM EnhancedOrders GROUP BY prodName`,
		// Listing 5
		`SELECT prodName,
		 (SELECT (SUM(i.revenue) - SUM(i.cost)) / SUM(i.revenue)
		  FROM Orders AS i WHERE i.prodName = o.prodName),
		 COUNT(*)
		 FROM Orders AS o GROUP BY prodName`,
		// Listing 6
		`SELECT prodName, sumRevenue,
		 sumRevenue / sumRevenue AT (ALL prodName) AS proportionOfTotalRevenue
		 FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders) AS o
		 GROUP BY prodName`,
		// Listing 7
		`SELECT prodName, orderYear, profitMargin,
		 profitMargin AT (SET orderYear = CURRENT orderYear - 1) AS profitMarginLastYear
		 FROM (SELECT *,
		   (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin,
		   YEAR(orderDate) AS orderYear
		   FROM Orders)
		 WHERE orderYear = 2024
		 GROUP BY prodName, orderYear`,
		// Listing 8
		`SELECT o.prodName, COUNT(*) AS c,
		 AGGREGATE(o.sumRevenue) AS rAgg,
		 o.sumRevenue AT (VISIBLE) AS rViz,
		 o.sumRevenue AS r
		 FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders) AS o
		 WHERE o.custName <> 'Bob'
		 GROUP BY ROLLUP(o.prodName)`,
		// Listing 9
		`WITH EnhancedCustomers AS (
		   SELECT *, AVG(custAge) AS MEASURE avgAge FROM Customers)
		 SELECT o.prodName, COUNT(*) AS orderCount,
		 AVG(c.custAge) AS weightedAvgAge,
		 c.avgAge AS avgAge,
		 c.avgAge AT (VISIBLE) AS visibleAvgAge
		 FROM Orders AS o
		 JOIN EnhancedCustomers AS c USING (custName)
		 WHERE c.custAge >= 18
		 GROUP BY o.prodName`,
		// Listing 10
		`SELECT prodName, YEAR(orderDate) AS orderYear,
		 sumRevenue / sumRevenue AT (SET orderYear = CURRENT orderYear - 1) AS ratio
		 FROM OrdersWithRevenue
		 GROUP BY prodName, YEAR(orderDate)`,
		// Listing 12 query 1
		`SELECT o.prodName, o.orderDate FROM Orders AS o
		 WHERE o.revenue > (SELECT AVG(revenue) FROM Orders AS o1 WHERE o1.prodName = o.prodName)`,
		// Listing 12 query 2
		`SELECT o.prodName, o.orderDate FROM Orders AS o
		 LEFT JOIN (SELECT prodName, AVG(revenue) AS avgRevenue FROM Orders GROUP BY prodName) AS o2
		 ON o.prodName = o2.prodName
		 WHERE o.revenue > o2.avgRevenue`,
		// Listing 12 query 3
		`SELECT o.prodName, o.orderDate FROM
		 (SELECT prodName, revenue, orderDate,
		  AVG(revenue) OVER (PARTITION BY prodName) AS avgRevenue
		  FROM Orders) AS o
		 WHERE o.revenue > o.avgRevenue`,
		// Listing 12 query 4
		`SELECT o.prodName, o.orderDate FROM
		 (SELECT prodName, orderDate, revenue, AVG(revenue) AS MEASURE avgRevenue
		  FROM Orders) AS o
		 WHERE o.revenue > o.avgRevenue AT (WHERE prodName = o.prodName)`,
	}
	for i, src := range listings {
		if _, err := ParseStatement(src); err != nil {
			t.Errorf("listing %d failed to parse: %v\nSQL: %s", i, err, src)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	// parse → print → parse → print must be a fixpoint.
	queries := []string{
		"SELECT prodName, AGGREGATE(profitMargin) FROM EnhancedOrders GROUP BY prodName",
		"SELECT a, b AT (ALL a SET c = CURRENT c - 1 VISIBLE WHERE d = 2) FROM t",
		"SELECT * FROM a JOIN b USING (x) LEFT JOIN c ON a.y = c.y WHERE a.z > 1 GROUP BY ROLLUP(a.x) HAVING COUNT(*) > 1 ORDER BY 1 DESC NULLS FIRST LIMIT 10",
		"WITH w AS (SELECT 1 AS x) SELECT SUM(x) FILTER (WHERE x > 0) OVER (PARTITION BY x) FROM w",
		"SELECT CASE WHEN a IS NOT DISTINCT FROM b THEN 1 ELSE 2 END FROM t",
		"SELECT CAST(a AS INTEGER), DATE '2024-01-01', 'it''s' FROM t",
	}
	for _, src := range queries {
		q1, err := ParseQuery(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed1 := ast.FormatQuery(q1)
		q2, err := ParseQuery(printed1)
		if err != nil {
			t.Fatalf("reparse %q: %v", printed1, err)
		}
		printed2 := ast.FormatQuery(q2)
		if printed1 != printed2 {
			t.Errorf("round trip not stable:\nfirst:  %s\nsecond: %s", printed1, printed2)
		}
	}
}

func TestExtract(t *testing.T) {
	e, err := ParseExpr("EXTRACT(YEAR FROM orderDate)")
	if err != nil {
		t.Fatal(err)
	}
	fc, ok := e.(*ast.FuncCall)
	if !ok || fc.Name != "YEAR" {
		t.Fatalf("EXTRACT desugar: %#v", e)
	}
	if _, err := ParseExpr("EXTRACT(EPOCH FROM x)"); err == nil {
		t.Error("unsupported unit should fail")
	}
	if _, err := ParseExpr("EXTRACT(YEAR x)"); err == nil {
		t.Error("missing FROM should fail")
	}
}

// The parser must return errors, never panic, on malformed input.
func TestParserRobustness(t *testing.T) {
	inputs := []string{
		"", ";", "(((((", ")", "SELECT", "SELECT ((1+", "AT", "CURRENT",
		"SELECT * FROM (SELECT", "WITH x AS SELECT 1", "GROUP BY",
		"SELECT 1 FROM t WHERE a IN (", "SELECT CAST(1 AS)", "''''",
		"SELECT a AT (SET = 1) FROM t", "SELECT -- comment only",
		"\x00\x01\x02", "SELECT 1e999999", "SELECT . FROM t",
		"INSERT INTO t VALUES", "CREATE VIEW v AS", "DROP",
		"SELECT m AT (ALL,) FROM t", "SELECT 'unterminated",
	}
	for _, src := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic on %q: %v", src, r)
				}
			}()
			_, _ = ParseStatements(src)
		}()
	}
}

// Property: printing any successfully parsed statement yields SQL that
// reparses (printer totality over the grammar).
func TestPrintedSQLAlwaysReparses(t *testing.T) {
	srcs := []string{
		"SELECT DISTINCT a.b AS x FROM t AS a WHERE NOT (x > 1 OR x IS NULL) GROUP BY CUBE(a, b) HAVING COUNT(*) > 0",
		"SELECT m AT (ALL a, b VISIBLE SET c = CURRENT c - 1 WHERE d = 'x''y') FROM v",
		"SELECT EXTRACT(MONTH FROM d), SUM(x) FILTER (WHERE y) OVER (PARTITION BY z ORDER BY w DESC NULLS FIRST ROWS BETWEEN UNBOUNDED PRECEDING AND UNBOUNDED FOLLOWING) FROM t",
		"WITH a AS (SELECT 1 AS one), b AS (SELECT * FROM a) SELECT * FROM b CROSS JOIN a ORDER BY 1 LIMIT 5 OFFSET 1",
		"SELECT CASE x WHEN 1 THEN 'a' ELSE 'b' END FROM t UNION ALL SELECT 'c' INTERSECT SELECT 'd'",
		"INSERT INTO t (a, b) SELECT c, d FROM u",
		"CREATE OR REPLACE VIEW vw AS SELECT a, SUM(b) AS MEASURE m FROM t WHERE a NOT BETWEEN 1 AND 2",
	}
	for _, src := range srcs {
		stmt, err := ParseStatement(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := ast.FormatStatement(stmt)
		if _, err := ParseStatement(printed); err != nil {
			t.Errorf("printed SQL does not reparse: %v\noriginal: %s\nprinted: %s", err, src, printed)
		}
	}
}
