// Package parser turns SQL text into the AST of package ast. It is a
// hand-written recursive-descent parser with precedence climbing for
// expressions, covering the SQL subset described in DESIGN.md plus the
// paper's measure extensions: AS MEASURE select items, the AT operator
// and its modifiers, and the CURRENT dimension qualifier.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/measures-sql/msql/internal/ast"
	"github.com/measures-sql/msql/internal/lexer"
)

// Parser parses one or more SQL statements.
type Parser struct {
	src  string
	toks []lexer.Token
	pos  int
	// paramSeq numbers bare ? placeholders left to right; maxParam is
	// the highest parameter index seen. Both reset per statement.
	paramSeq int
	maxParam int
}

// New creates a parser for src, tokenizing eagerly.
func New(src string) (*Parser, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	return &Parser{src: src, toks: toks}, nil
}

// ParseStatement parses a single statement from src (a trailing semicolon
// is allowed).
func ParseStatement(src string) (ast.Statement, error) {
	p, err := New(src)
	if err != nil {
		return nil, err
	}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.acceptOp(";")
	if !p.atEOF() {
		return nil, p.errHere("unexpected input after statement")
	}
	return stmt, nil
}

// ParseStatements parses a semicolon-separated script.
func ParseStatements(src string) ([]ast.Statement, error) {
	p, err := New(src)
	if err != nil {
		return nil, err
	}
	var stmts []ast.Statement
	for {
		for p.acceptOp(";") {
		}
		if p.atEOF() {
			return stmts, nil
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, stmt)
		if !p.acceptOp(";") && !p.atEOF() {
			return nil, p.errHere("expected ';' between statements")
		}
	}
}

// ParseQuery parses a single query.
func ParseQuery(src string) (*ast.Query, error) {
	stmt, err := ParseStatement(src)
	if err != nil {
		return nil, err
	}
	qs, ok := stmt.(*ast.QueryStmt)
	if !ok {
		return nil, fmt.Errorf("expected a query, got %T", stmt)
	}
	return qs.Query, nil
}

// ParseQueryWithParams parses a single query that may contain parameter
// placeholders ($n or ?), additionally returning the number of
// parameters (the highest index referenced).
func ParseQueryWithParams(src string) (*ast.Query, int, error) {
	p, err := New(src)
	if err != nil {
		return nil, 0, err
	}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, 0, err
	}
	p.acceptOp(";")
	if !p.atEOF() {
		return nil, 0, p.errHere("unexpected input after statement")
	}
	qs, ok := stmt.(*ast.QueryStmt)
	if !ok {
		return nil, 0, fmt.Errorf("expected a query, got %T", stmt)
	}
	return qs.Query, p.maxParam, nil
}

// ParseExpr parses a single scalar expression.
func ParseExpr(src string) (ast.Expr, error) {
	p, err := New(src)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errHere("unexpected input after expression")
	}
	return e, nil
}

// ---------------------------------------------------------------------------
// Token helpers

func (p *Parser) cur() lexer.Token { return p.toks[p.pos] }
func (p *Parser) atEOF() bool      { return p.cur().Kind == lexer.EOF }
func (p *Parser) advance() lexer.Token {
	t := p.toks[p.pos]
	if t.Kind != lexer.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == lexer.Keyword && t.Text == kw
}

func (p *Parser) peekKeyword2(kw string) bool {
	if p.pos+1 >= len(p.toks) {
		return false
	}
	t := p.toks[p.pos+1]
	return t.Kind == lexer.Keyword && t.Text == kw
}

func (p *Parser) peekOp(op string) bool {
	t := p.cur()
	return t.Kind == lexer.Op && t.Text == op
}

// peekIdent matches a non-reserved word used as a statement head (like
// EXPLAIN's ANALYZE): it stays usable as an ordinary identifier
// elsewhere.
func (p *Parser) peekIdent(word string) bool {
	t := p.cur()
	return t.Kind == lexer.Ident && strings.EqualFold(t.Text, word)
}

func (p *Parser) accept(kw string) bool {
	if p.peekKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) acceptOp(op string) bool {
	if p.peekOp(op) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(kw string) error {
	if !p.accept(kw) {
		return p.errHere("expected %s", kw)
	}
	return nil
}

func (p *Parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errHere("expected '%s'", op)
	}
	return nil
}

// ident accepts an identifier, or a non-reserved keyword usable as a name.
func (p *Parser) ident() (string, error) {
	t := p.cur()
	if t.Kind == lexer.Ident {
		p.pos++
		return t.Text, nil
	}
	return "", p.errHere("expected identifier")
}

func (p *Parser) errHere(format string, args ...any) error {
	t := p.cur()
	line, col := 1, 1
	for i := 0; i < t.Pos && i < len(p.src); i++ {
		if p.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	where := t.Text
	if t.Kind == lexer.EOF {
		where = "end of input"
	}
	return fmt.Errorf("syntax error at line %d column %d near %q: %s",
		line, col, where, fmt.Sprintf(format, args...))
}

// ---------------------------------------------------------------------------
// Statements

func (p *Parser) parseStatement() (ast.Statement, error) {
	p.paramSeq, p.maxParam = 0, 0
	switch {
	case p.peekKeyword("CREATE"):
		return p.parseCreate()
	case p.peekKeyword("INSERT"):
		return p.parseInsert()
	case p.peekKeyword("DROP"):
		return p.parseDrop()
	case p.peekIdent("TRUNCATE"):
		// TRUNCATE is not a reserved word (it stays usable as a name);
		// the statement form is TRUNCATE [TABLE] <name>.
		p.advance()
		p.accept("TABLE")
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ast.Truncate{Table: name}, nil
	case p.peekIdent("PREPARE"):
		return p.parsePrepare()
	case p.peekIdent("EXECUTE"):
		return p.parseExecute()
	case p.peekIdent("KILL"):
		// KILL is not a reserved word (it stays usable as a name); the
		// statement form is KILL <integer query id>.
		p.advance()
		t := p.cur()
		if t.Kind != lexer.Number {
			return nil, p.errHere("expected a query id after KILL")
		}
		p.advance()
		id, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errHere("bad query id %q", t.Text)
		}
		return &ast.Kill{ID: id}, nil
	case p.peekIdent("DEALLOCATE"):
		p.advance()
		if p.accept("ALL") {
			return &ast.Deallocate{All: true}, nil
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ast.Deallocate{Name: name}, nil
	case p.peekKeyword("EXPLAIN"):
		p.advance()
		// ANALYZE is not a reserved word: match it as an identifier so
		// column names may still use it.
		analyze := false
		if t := p.cur(); t.Kind == lexer.Ident && strings.EqualFold(t.Text, "ANALYZE") {
			p.advance()
			analyze = true
		}
		if p.peekIdent("EXECUTE") {
			ex, err := p.parseExecute()
			if err != nil {
				return nil, err
			}
			return &ast.Explain{Execute: ex.(*ast.ExecuteStmt), Analyze: analyze}, nil
		}
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		return &ast.Explain{Query: q, Analyze: analyze}, nil
	case p.peekKeyword("EXPAND"):
		p.advance()
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		return &ast.Expand{Query: q}, nil
	case p.peekKeyword("SELECT") || p.peekKeyword("WITH") || p.peekOp("("):
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		return &ast.QueryStmt{Query: q}, nil
	default:
		return nil, p.errHere("expected a statement")
	}
}

// parsePrepare parses PREPARE name [(type, ...)] AS query. Only queries
// may be prepared; the optional type list declares parameter types,
// which are otherwise inferred from the EXECUTE arguments.
func (p *Parser) parsePrepare() (ast.Statement, error) {
	p.advance() // PREPARE
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	var types []string
	if p.acceptOp("(") {
		for {
			tn, err := p.typeName()
			if err != nil {
				return nil, err
			}
			types = append(types, tn)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expect("AS"); err != nil {
		return nil, err
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return &ast.Prepare{Name: name, Types: types, Query: q, NParams: p.maxParam}, nil
}

// parseExecute parses EXECUTE name [(expr, ...)].
func (p *Parser) parseExecute() (ast.Statement, error) {
	p.advance() // EXECUTE
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	var args []ast.Expr
	if p.acceptOp("(") {
		if !p.peekOp(")") {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, e)
				if !p.acceptOp(",") {
					break
				}
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	return &ast.ExecuteStmt{Name: name, Args: args}, nil
}

func (p *Parser) parseCreate() (ast.Statement, error) {
	p.advance() // CREATE
	orReplace := false
	if p.accept("OR") {
		if err := p.expect("REPLACE"); err != nil {
			return nil, err
		}
		orReplace = true
	}
	switch {
	case p.accept("TABLE"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var cols []ast.ColumnDef
		for {
			colName, err := p.ident()
			if err != nil {
				return nil, err
			}
			typeName, err := p.typeName()
			if err != nil {
				return nil, err
			}
			cols = append(cols, ast.ColumnDef{Name: colName, TypeName: typeName})
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &ast.CreateTable{Name: name, OrReplace: orReplace, Cols: cols}, nil
	case p.accept("VIEW"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("AS"); err != nil {
			return nil, err
		}
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		return &ast.CreateView{Name: name, OrReplace: orReplace, Query: q}, nil
	default:
		return nil, p.errHere("expected TABLE or VIEW after CREATE")
	}
}

// typeName parses a type, allowing both keywords (DATE) and identifiers
// (VARCHAR, INTEGER), with an optional parenthesized length that is
// accepted and ignored (e.g. VARCHAR(20)).
func (p *Parser) typeName() (string, error) {
	t := p.cur()
	var name string
	switch {
	case t.Kind == lexer.Ident:
		name = strings.ToUpper(t.Text)
		p.pos++
	case t.Kind == lexer.Keyword && t.Text == "DATE":
		name = "DATE"
		p.pos++
	default:
		return "", p.errHere("expected type name")
	}
	if p.acceptOp("(") {
		for !p.peekOp(")") && !p.atEOF() {
			p.advance()
		}
		if err := p.expectOp(")"); err != nil {
			return "", err
		}
	}
	return name, nil
}

func (p *Parser) parseInsert() (ast.Statement, error) {
	p.advance() // INSERT
	if err := p.expect("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &ast.Insert{Table: name}
	if p.acceptOp("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if p.accept("VALUES") {
		for {
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var row []ast.Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if !p.acceptOp(",") {
				break
			}
		}
		return ins, nil
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	ins.Query = q
	return ins, nil
}

func (p *Parser) parseDrop() (ast.Statement, error) {
	p.advance() // DROP
	var kind string
	switch {
	case p.accept("TABLE"):
		kind = "TABLE"
	case p.accept("VIEW"):
		kind = "VIEW"
	default:
		return nil, p.errHere("expected TABLE or VIEW after DROP")
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &ast.Drop{Kind: kind, Name: name}, nil
}

// ---------------------------------------------------------------------------
// Queries

func (p *Parser) parseQuery() (*ast.Query, error) {
	q := &ast.Query{}
	if p.accept("WITH") {
		for {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expect("AS"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			sub, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			q.With = append(q.With, ast.CTE{Name: name, Query: sub})
			if !p.acceptOp(",") {
				break
			}
		}
	}
	body, err := p.parseSetOps()
	if err != nil {
		return nil, err
	}
	q.Body = body
	if p.accept("ORDER") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		items, err := p.parseOrderItems()
		if err != nil {
			return nil, err
		}
		q.OrderBy = items
	}
	if p.accept("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Limit = e
	}
	if p.accept("OFFSET") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Offset = e
	}
	return q, nil
}

// parseSetOps handles UNION/EXCEPT (left-associative, same level) over
// INTERSECT (binds tighter), per the SQL standard.
func (p *Parser) parseSetOps() (ast.Body, error) {
	left, err := p.parseIntersect()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.peekKeyword("UNION"):
			op = "UNION"
		case p.peekKeyword("EXCEPT"):
			op = "EXCEPT"
		default:
			return left, nil
		}
		p.advance()
		all := p.accept("ALL")
		if !all {
			p.accept("DISTINCT")
		}
		right, err := p.parseIntersect()
		if err != nil {
			return nil, err
		}
		left = &ast.SetOp{Op: op, All: all, Left: left, Right: right}
	}
}

func (p *Parser) parseIntersect() (ast.Body, error) {
	left, err := p.parseBodyTerm()
	if err != nil {
		return nil, err
	}
	for p.peekKeyword("INTERSECT") {
		p.advance()
		all := p.accept("ALL")
		if !all {
			p.accept("DISTINCT")
		}
		right, err := p.parseBodyTerm()
		if err != nil {
			return nil, err
		}
		left = &ast.SetOp{Op: "INTERSECT", All: all, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseBodyTerm() (ast.Body, error) {
	if p.acceptOp("(") {
		sub, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &ast.SubqueryBody{Query: sub}, nil
	}
	return p.parseSelect()
}

func (p *Parser) parseSelect() (*ast.Select, error) {
	if err := p.expect("SELECT"); err != nil {
		return nil, err
	}
	sel := &ast.Select{}
	if p.accept("DISTINCT") {
		sel.Distinct = true
	} else {
		p.accept("ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.accept("FROM") {
		from, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		sel.From = from
	}
	if p.accept("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.accept("GROUP") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseGroupItem()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, g)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.accept("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.accept("QUALIFY") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Qualify = e
	}
	return sel, nil
}

func (p *Parser) parseSelectItem() (ast.SelectItem, error) {
	if p.acceptOp("*") {
		return ast.SelectItem{Star: true}, nil
	}
	// t.* needs two-token lookahead: Ident '.' '*'.
	if p.cur().Kind == lexer.Ident && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Kind == lexer.Op && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Kind == lexer.Op && p.toks[p.pos+2].Text == "*" {
		table := p.advance().Text
		p.advance() // .
		p.advance() // *
		return ast.SelectItem{Star: true, StarTable: table}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return ast.SelectItem{}, err
	}
	item := ast.SelectItem{Expr: e}
	if p.accept("AS") {
		if p.accept("MEASURE") {
			item.Measure = true
		}
		alias, err := p.ident()
		if err != nil {
			return ast.SelectItem{}, err
		}
		item.Alias = alias
	} else if p.cur().Kind == lexer.Ident {
		item.Alias = p.advance().Text
	}
	return item, nil
}

func (p *Parser) parseGroupItem() (ast.GroupItem, error) {
	switch {
	case p.accept("ROLLUP"):
		exprs, err := p.parenExprList()
		if err != nil {
			return ast.GroupItem{}, err
		}
		return ast.GroupItem{Kind: ast.GroupRollup, Exprs: exprs}, nil
	case p.accept("CUBE"):
		exprs, err := p.parenExprList()
		if err != nil {
			return ast.GroupItem{}, err
		}
		return ast.GroupItem{Kind: ast.GroupCube, Exprs: exprs}, nil
	case p.peekKeyword("GROUPING") && p.peekKeyword2("SETS"):
		p.advance()
		p.advance()
		if err := p.expectOp("("); err != nil {
			return ast.GroupItem{}, err
		}
		var sets [][]ast.Expr
		for {
			set, err := p.parenExprListAllowEmpty()
			if err != nil {
				return ast.GroupItem{}, err
			}
			sets = append(sets, set)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return ast.GroupItem{}, err
		}
		return ast.GroupItem{Kind: ast.GroupSets, Sets: sets}, nil
	default:
		e, err := p.parseExpr()
		if err != nil {
			return ast.GroupItem{}, err
		}
		return ast.GroupItem{Kind: ast.GroupExpr, Exprs: []ast.Expr{e}}, nil
	}
}

func (p *Parser) parenExprList() ([]ast.Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var exprs []ast.Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return exprs, nil
}

func (p *Parser) parenExprListAllowEmpty() ([]ast.Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	if p.acceptOp(")") {
		return []ast.Expr{}, nil
	}
	var exprs []ast.Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return exprs, nil
}

func (p *Parser) parseOrderItems() ([]ast.OrderItem, error) {
	var items []ast.OrderItem
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := ast.OrderItem{Expr: e}
		if p.accept("DESC") {
			item.Desc = true
		} else {
			p.accept("ASC")
		}
		if p.accept("NULLS") {
			switch {
			case p.accept("FIRST"):
				v := true
				item.NullsFirst = &v
			case p.accept("LAST"):
				v := false
				item.NullsFirst = &v
			default:
				return nil, p.errHere("expected FIRST or LAST after NULLS")
			}
		}
		items = append(items, item)
		if !p.acceptOp(",") {
			return items, nil
		}
	}
}

// ---------------------------------------------------------------------------
// Table expressions

func (p *Parser) parseTableExpr() (ast.TableExpr, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		natural := false
		if p.peekKeyword("NATURAL") {
			p.advance()
			natural = true
		}
		var kind ast.JoinKind
		switch {
		case p.accept("JOIN"):
			kind = ast.JoinInner
		case p.accept("INNER"):
			if err := p.expect("JOIN"); err != nil {
				return nil, err
			}
			kind = ast.JoinInner
		case p.accept("LEFT"):
			p.accept("OUTER")
			if err := p.expect("JOIN"); err != nil {
				return nil, err
			}
			kind = ast.JoinLeft
		case p.accept("RIGHT"):
			p.accept("OUTER")
			if err := p.expect("JOIN"); err != nil {
				return nil, err
			}
			kind = ast.JoinRight
		case p.accept("FULL"):
			p.accept("OUTER")
			if err := p.expect("JOIN"); err != nil {
				return nil, err
			}
			kind = ast.JoinFull
		case p.accept("CROSS"):
			if err := p.expect("JOIN"); err != nil {
				return nil, err
			}
			kind = ast.JoinCross
		case p.acceptOp(","):
			kind = ast.JoinCross
			right, err := p.parseTablePrimary()
			if err != nil {
				return nil, err
			}
			left = &ast.JoinExpr{Kind: kind, Left: left, Right: right}
			continue
		default:
			if natural {
				return nil, p.errHere("expected JOIN after NATURAL")
			}
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		join := &ast.JoinExpr{Kind: kind, Natural: natural, Left: left, Right: right}
		if kind != ast.JoinCross && !natural {
			switch {
			case p.accept("ON"):
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				join.On = e
			case p.accept("USING"):
				if err := p.expectOp("("); err != nil {
					return nil, err
				}
				for {
					c, err := p.ident()
					if err != nil {
						return nil, err
					}
					join.Using = append(join.Using, c)
					if !p.acceptOp(",") {
						break
					}
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			default:
				return nil, p.errHere("expected ON or USING after JOIN")
			}
		}
		left = join
	}
}

func (p *Parser) parseTablePrimary() (ast.TableExpr, error) {
	if p.acceptOp("(") {
		sub, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		alias := ""
		if p.accept("AS") {
			alias, err = p.ident()
			if err != nil {
				return nil, err
			}
		} else if p.cur().Kind == lexer.Ident {
			alias = p.advance().Text
		}
		return &ast.SubqueryTable{Query: sub, Alias: alias}, nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	// Dot-qualified reference (schema.table), used by the msql_stats.*
	// system tables; the qualified name is kept as one dotted string.
	for p.peekOp(".") {
		if p.pos+1 >= len(p.toks) || p.toks[p.pos+1].Kind != lexer.Ident {
			break
		}
		p.advance() // '.'
		name += "." + p.advance().Text
	}
	alias := ""
	if p.accept("AS") {
		alias, err = p.ident()
		if err != nil {
			return nil, err
		}
	} else if p.cur().Kind == lexer.Ident {
		alias = p.advance().Text
	}
	return &ast.TableName{Name: name, Alias: alias}, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *Parser) parseExpr() (ast.Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (ast.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (ast.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (ast.Expr, error) {
	if p.accept("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (ast.Expr, error) {
	left, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.peekOp("=") || p.peekOp("<>") || p.peekOp("<") || p.peekOp("<=") || p.peekOp(">") || p.peekOp(">="):
			op := p.advance().Text
			right, err := p.parseConcat()
			if err != nil {
				return nil, err
			}
			left = &ast.Binary{Op: op, L: left, R: right}
		case p.peekKeyword("IS"):
			p.advance()
			not := p.accept("NOT")
			switch {
			case p.accept("NULL"):
				left = &ast.IsNull{X: left, Not: not}
			case p.accept("TRUE"):
				left = isBool(left, true, not)
			case p.accept("FALSE"):
				left = isBool(left, false, not)
			case p.accept("DISTINCT"):
				if err := p.expect("FROM"); err != nil {
					return nil, err
				}
				right, err := p.parseConcat()
				if err != nil {
					return nil, err
				}
				left = &ast.IsDistinct{L: left, R: right, Not: not}
			default:
				return nil, p.errHere("expected NULL, TRUE, FALSE or DISTINCT FROM after IS")
			}
		case p.peekKeyword("BETWEEN"), p.peekKeyword("IN"), p.peekKeyword("LIKE"):
			left, err = p.parseSuffixPredicate(left, false)
			if err != nil {
				return nil, err
			}
		case p.peekKeyword("NOT") && (p.peekKeyword2("BETWEEN") || p.peekKeyword2("IN") || p.peekKeyword2("LIKE")):
			p.advance() // NOT
			left, err = p.parseSuffixPredicate(left, true)
			if err != nil {
				return nil, err
			}
		default:
			return left, nil
		}
	}
}

func isBool(x ast.Expr, val, not bool) ast.Expr {
	// x IS TRUE is not the same as x = TRUE under NULLs: IS TRUE is never
	// NULL. Encode as IS NOT DISTINCT FROM.
	lit := &ast.BoolLit{Val: val}
	return &ast.IsDistinct{L: x, R: lit, Not: !not}
}

func (p *Parser) parseSuffixPredicate(left ast.Expr, not bool) (ast.Expr, error) {
	switch {
	case p.accept("BETWEEN"):
		lo, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		if err := p.expect("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		return &ast.Between{X: left, Lo: lo, Hi: hi, Not: not}, nil
	case p.accept("LIKE"):
		pat, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		return &ast.Binary{Op: likeOp(not), L: left, R: pat}, nil
	case p.accept("IN"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		if p.peekKeyword("SELECT") || p.peekKeyword("WITH") {
			q, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &ast.InSubquery{X: left, Query: q, Not: not}, nil
		}
		var list []ast.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &ast.InList{X: left, List: list, Not: not}, nil
	default:
		return nil, p.errHere("expected BETWEEN, IN or LIKE")
	}
}

func likeOp(not bool) string {
	if not {
		return "NOT LIKE"
	}
	return "LIKE"
}

func (p *Parser) parseConcat() (ast.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for p.peekOp("||") {
		p.advance()
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{Op: "||", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseAdditive() (ast.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.peekOp("+") || p.peekOp("-") {
		op := p.advance().Text
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseMultiplicative() (ast.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peekOp("*") || p.peekOp("/") || p.peekOp("%") {
		op := p.advance().Text
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseUnary() (ast.Expr, error) {
	if p.peekOp("-") {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative numeric literals for cleaner ASTs.
		if n, ok := x.(*ast.NumberLit); ok {
			return negLit(n), nil
		}
		return &ast.Unary{Op: "-", X: x}, nil
	}
	if p.peekOp("+") {
		p.advance()
		return p.parseUnary()
	}
	return p.parsePostfix()
}

func negLit(n *ast.NumberLit) *ast.NumberLit {
	if n.IsInt {
		return &ast.NumberLit{Text: "-" + n.Text, IsInt: true, Int: -n.Int}
	}
	return &ast.NumberLit{Text: "-" + n.Text, Float: -n.Float}
}

// parsePostfix parses a primary expression followed by any number of AT
// applications. AT binds tighter than every binary operator, so
// "a / b AT (ALL x)" applies AT to b only (paper Listing 6).
func (p *Parser) parsePostfix() (ast.Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.peekKeyword("AT") {
		p.advance()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		mods, err := p.parseAtModifiers()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		x = &ast.At{X: x, Mods: mods}
	}
	return x, nil
}

func (p *Parser) parseAtModifiers() ([]ast.AtMod, error) {
	var mods []ast.AtMod
	for {
		switch {
		case p.accept("ALL"):
			mod := &ast.AtAll{}
			// Bare ALL if the next token closes the list or starts
			// another modifier; otherwise a dimension list follows.
			for !p.peekOp(")") && !p.peekKeyword("SET") && !p.peekKeyword("VISIBLE") &&
				!p.peekKeyword("WHERE") && !p.peekKeyword("ALL") {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				mod.Dims = append(mod.Dims, e)
				if !p.acceptOp(",") {
					break
				}
			}
			mods = append(mods, mod)
		case p.accept("SET"):
			dim, err := p.parsePostfix()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp("="); err != nil {
				return nil, err
			}
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			mods = append(mods, &ast.AtSet{Dim: dim, Value: val})
		case p.accept("VISIBLE"):
			mods = append(mods, &ast.AtVisible{})
		case p.accept("WHERE"):
			pred, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			mods = append(mods, &ast.AtWhere{Pred: pred})
		default:
			if len(mods) == 0 {
				return nil, p.errHere("expected AT modifier (ALL, SET, VISIBLE or WHERE)")
			}
			return mods, nil
		}
	}
}

func (p *Parser) parsePrimary() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case lexer.Number:
		p.advance()
		return numberLit(t.Text)
	case lexer.String:
		p.advance()
		return &ast.StringLit{Val: t.Text}, nil
	case lexer.Keyword:
		switch t.Text {
		case "TRUE":
			p.advance()
			return &ast.BoolLit{Val: true}, nil
		case "FALSE":
			p.advance()
			return &ast.BoolLit{Val: false}, nil
		case "NULL":
			p.advance()
			return &ast.NullLit{}, nil
		case "DATE":
			p.advance()
			lit := p.cur()
			if lit.Kind != lexer.String {
				return nil, p.errHere("expected string literal after DATE")
			}
			p.advance()
			return &ast.DateLit{Val: lit.Text}, nil
		case "CASE":
			return p.parseCase()
		case "CAST":
			return p.parseCast()
		case "EXISTS":
			p.advance()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			q, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &ast.Exists{Query: q}, nil
		case "CURRENT":
			p.advance()
			dim, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			return &ast.Current{Dim: dim}, nil
		case "GROUPING":
			p.advance()
			args, err := p.parenExprList()
			if err != nil {
				return nil, err
			}
			return &ast.FuncCall{Name: "GROUPING", Args: args, Pos: t.Pos}, nil
		case "LEFT", "RIGHT", "REPLACE", "FILTER", "FIRST", "LAST":
			// Function names that collide with keywords (e.g. LEFT('ab',1)).
			if p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == lexer.Op && p.toks[p.pos+1].Text == "(" {
				p.advance()
				return p.parseFuncCall(t.Text, t.Pos)
			}
		}
		return nil, p.errHere("unexpected keyword in expression")
	case lexer.Ident:
		p.advance()
		// EXTRACT(unit FROM expr) desugars to the unit function.
		if strings.EqualFold(t.Text, "EXTRACT") && p.peekOp("(") {
			return p.parseExtract(t.Pos)
		}
		// Function call?
		if p.peekOp("(") {
			return p.parseFuncCall(t.Text, t.Pos)
		}
		// Qualified identifier chain.
		parts := []string{t.Text}
		for p.peekOp(".") {
			p.advance()
			part, err := p.ident()
			if err != nil {
				return nil, err
			}
			parts = append(parts, part)
		}
		return &ast.Ident{Parts: parts, Pos: t.Pos}, nil
	case lexer.Op:
		if t.Text == "?" {
			p.advance()
			p.paramSeq++
			if p.paramSeq > p.maxParam {
				p.maxParam = p.paramSeq
			}
			return &ast.Param{Index: p.paramSeq, Pos: t.Pos}, nil
		}
		if strings.HasPrefix(t.Text, "$") {
			p.advance()
			n, err := strconv.Atoi(t.Text[1:])
			if err != nil || n <= 0 {
				return nil, p.errHere("invalid parameter reference %s", t.Text)
			}
			if n > p.maxParam {
				p.maxParam = n
			}
			return &ast.Param{Index: n, Pos: t.Pos}, nil
		}
		if t.Text == "(" {
			p.advance()
			if p.peekKeyword("SELECT") || p.peekKeyword("WITH") {
				q, err := p.parseQuery()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &ast.ScalarSubquery{Query: q}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errHere("expected an expression")
}

func numberLit(text string) (ast.Expr, error) {
	if !strings.ContainsAny(text, ".eE") {
		i, err := strconv.ParseInt(text, 10, 64)
		if err == nil {
			return &ast.NumberLit{Text: text, IsInt: true, Int: i}, nil
		}
		// Fall through to float for out-of-range integers.
	}
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return nil, fmt.Errorf("invalid numeric literal %q", text)
	}
	return &ast.NumberLit{Text: text, Float: f}, nil
}

func (p *Parser) parseFuncCall(name string, pos int) (ast.Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	call := &ast.FuncCall{Name: strings.ToUpper(name), Pos: pos}
	switch {
	case p.acceptOp("*"):
		call.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	case p.acceptOp(")"):
		// zero-argument call
	default:
		if p.accept("DISTINCT") {
			call.Distinct = true
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if p.peekKeyword("WITHIN") {
		p.advance()
		if err := p.expect("DISTINCT"); err != nil {
			return nil, err
		}
		keys, err := p.parenExprList()
		if err != nil {
			return nil, err
		}
		call.WithinDistinct = keys
	}
	if p.peekKeyword("FILTER") {
		p.advance()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		if err := p.expect("WHERE"); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		call.Filter = e
	}
	if p.peekKeyword("OVER") {
		p.advance()
		spec, err := p.parseWindowSpec()
		if err != nil {
			return nil, err
		}
		call.Over = spec
	}
	return call, nil
}

func (p *Parser) parseWindowSpec() (*ast.WindowSpec, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	spec := &ast.WindowSpec{}
	if p.accept("PARTITION") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			spec.PartitionBy = append(spec.PartitionBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.accept("ORDER") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		items, err := p.parseOrderItems()
		if err != nil {
			return nil, err
		}
		spec.OrderBy = items
	}
	if p.peekKeyword("ROWS") || p.peekKeyword("RANGE") {
		unit := p.advance().Text
		frame := &ast.Frame{Unit: unit}
		if p.accept("BETWEEN") {
			start, err := p.parseFrameBound()
			if err != nil {
				return nil, err
			}
			if err := p.expect("AND"); err != nil {
				return nil, err
			}
			end, err := p.parseFrameBound()
			if err != nil {
				return nil, err
			}
			frame.Start, frame.End = start, end
		} else {
			start, err := p.parseFrameBound()
			if err != nil {
				return nil, err
			}
			frame.Start = start
			frame.End = ast.FrameBound{Kind: ast.CurrentRow}
		}
		spec.Frame = frame
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return spec, nil
}

func (p *Parser) parseFrameBound() (ast.FrameBound, error) {
	switch {
	case p.accept("UNBOUNDED"):
		switch {
		case p.accept("PRECEDING"):
			return ast.FrameBound{Kind: ast.UnboundedPreceding}, nil
		case p.accept("FOLLOWING"):
			return ast.FrameBound{Kind: ast.UnboundedFollowing}, nil
		default:
			return ast.FrameBound{}, p.errHere("expected PRECEDING or FOLLOWING")
		}
	case p.accept("CURRENT"):
		if err := p.expect("ROW"); err != nil {
			return ast.FrameBound{}, err
		}
		return ast.FrameBound{Kind: ast.CurrentRow}, nil
	default:
		e, err := p.parseExpr()
		if err != nil {
			return ast.FrameBound{}, err
		}
		switch {
		case p.accept("PRECEDING"):
			return ast.FrameBound{Kind: ast.OffsetPreceding, Offset: e}, nil
		case p.accept("FOLLOWING"):
			return ast.FrameBound{Kind: ast.OffsetFollowing, Offset: e}, nil
		default:
			return ast.FrameBound{}, p.errHere("expected PRECEDING or FOLLOWING")
		}
	}
}

func (p *Parser) parseCase() (ast.Expr, error) {
	p.advance() // CASE
	c := &ast.Case{}
	if !p.peekKeyword("WHEN") {
		operand, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = operand
	}
	for p.accept("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, ast.When{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errHere("CASE requires at least one WHEN arm")
	}
	if p.accept("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expect("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *Parser) parseCast() (ast.Expr, error) {
	p.advance() // CAST
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect("AS"); err != nil {
		return nil, err
	}
	typeName, err := p.typeName()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &ast.Cast{X: x, TypeName: typeName}, nil
}

// parseExtract handles EXTRACT(unit FROM expr), desugaring to the
// corresponding date-part function (YEAR, MONTH, DAY, QUARTER).
func (p *Parser) parseExtract(pos int) (ast.Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	unit, err := p.ident()
	if err != nil {
		return nil, p.errHere("expected a date part (YEAR, MONTH, DAY, QUARTER) in EXTRACT")
	}
	switch strings.ToUpper(unit) {
	case "YEAR", "MONTH", "DAY", "QUARTER", "DAYOFWEEK":
	default:
		return nil, fmt.Errorf("EXTRACT does not support unit %s", unit)
	}
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	arg, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &ast.FuncCall{Name: strings.ToUpper(unit), Args: []ast.Expr{arg}, Pos: pos}, nil
}
