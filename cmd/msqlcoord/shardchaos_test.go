package main

// Process-level shard chaos: build the real msqld binary, run a
// 4-shard topology under an in-process coordinator, and SIGKILL/restart
// shards mid-query while readers and a writer hammer it. The ledger
// discipline is the package's robustness contract: every query finishes
// in exactly one of three ways —
//
//   - complete: a result bit-identical to the single-node oracle
//     (whether it was served cleanly or transparently retried/hedged/
//     failed over is invisible, which is the point),
//   - structured failure: errors.Is(err, msql.ErrUnavailable) and
//     errors.As to *dist.ShardUnavailableError naming the lost shards,
//   - nothing else. A silently partial result, a raw transport error,
//     or a deadline blown by the failure envelope all fail the test.
//
// Mutations acknowledged OR reported unavailable are both durable in
// the coordinator's replay log, so after the chaos stops and shards
// rejoin, the sharded data must converge to the oracle exactly.
//
// MSQL_SHARD_CHAOS_SECONDS overrides the soak duration (default 3).

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/measures-sql/msql/internal/dist"
	"github.com/measures-sql/msql/internal/paperdata"
	"github.com/measures-sql/msql/msql"
	"github.com/measures-sql/msql/msql/client"
)

func chaosDuration() time.Duration {
	if s := os.Getenv("MSQL_SHARD_CHAOS_SECONDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return time.Duration(n) * time.Second
		}
	}
	return 3 * time.Second
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// shardProc is one real msqld process on a fixed address.
type shardProc struct {
	t    *testing.T
	bin  string
	addr string
	id   string

	mu     sync.Mutex
	cmd    *exec.Cmd
	stderr *bytes.Buffer
}

func (p *shardProc) start() {
	var stderr bytes.Buffer
	cmd := exec.Command(p.bin, "-addr", p.addr, "-shard-id", p.id, "-no-access-log")
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		p.t.Fatalf("starting shard %s: %v", p.id, err)
	}
	hc := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := hc.Get("http://" + p.addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			p.t.Fatalf("shard %s never became healthy; stderr:\n%s", p.id, stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	p.mu.Lock()
	p.cmd, p.stderr = cmd, &stderr
	p.mu.Unlock()
}

func (p *shardProc) kill() {
	p.mu.Lock()
	cmd := p.cmd
	p.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		cmd.Process.Kill()
		cmd.Wait()
	}
}

// chaosQueries are read-only and touch only the static paper tables, so
// a mid-chaos success can be compared bitwise against the oracle even
// while a writer mutates other tables.
var chaosQueries = []string{
	`SELECT prodName, COUNT(*) AS n, SUM(revenue) AS rev FROM Orders GROUP BY prodName`,
	`SELECT prodName, SUM(revenue) - SUM(cost) AS profit FROM Orders GROUP BY prodName ORDER BY prodName`,
	`SELECT custName, revenue FROM Orders WHERE prodName = 'Happy'`,
	`SELECT prodName, AGGREGATE(profitMargin) AS profitMargin FROM EnhancedOrders GROUP BY prodName`,
	`SELECT * FROM Orders ORDER BY revenue, prodName`,
	`SELECT o.prodName, c.custAge FROM Orders o JOIN Customers c ON o.custName = c.custName ORDER BY o.prodName, c.custAge`,
}

func TestShardChaosLedger(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and hard-kills real msqld shards; skipped with -short")
	}
	startGoroutines := runtime.NumGoroutine()

	bin := filepath.Join(t.TempDir(), "msqld")
	build := exec.Command("go", "build", "-o", bin, "../msqld")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building msqld: %v\n%s", err, out)
	}

	const nShards = 4
	procs := make([]*shardProc, nShards)
	shardURLs := make([][]string, nShards)
	for i := range procs {
		procs[i] = &shardProc{t: t, bin: bin, addr: freeAddr(t), id: fmt.Sprintf("shard-%d", i)}
		procs[i].start()
		shardURLs[i] = []string{"http://" + procs[i].addr}
	}
	defer func() {
		for _, p := range procs {
			p.kill()
		}
	}()

	coord, err := dist.New(dist.Config{
		Shards:           shardURLs,
		QueryTimeout:     15 * time.Second,
		Backoff:          client.Backoff{Attempts: 3, Base: 5 * time.Millisecond, Max: 50 * time.Millisecond, Seed: 11},
		BreakerThreshold: 3,
		BreakerCooldown:  100 * time.Millisecond,
		HedgeDelay:       50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	oracle := msql.Open()
	defer oracle.Close()

	setup := paperdata.All + `CREATE TABLE kv (k INTEGER, v INTEGER);`
	if err := coord.Exec(context.Background(), setup); err != nil {
		t.Fatalf("setup through coordinator: %v", err)
	}
	oracle.MustExec(setup)

	// Oracle answers for the static queries, computed once.
	oracleRes := map[string]*msql.Result{}
	for _, q := range chaosQueries {
		res, err := oracle.QueryContext(context.Background(), q)
		if err != nil {
			t.Fatalf("oracle %q: %v", q, err)
		}
		oracleRes[q] = res
	}

	var (
		complete    atomic.Int64
		unavailable atomic.Int64
		writeAcks   atomic.Int64
		writeUnavs  atomic.Int64
		ledgerMu    sync.Mutex
		violations  []string
	)
	violation := func(format string, args ...any) {
		ledgerMu.Lock()
		if len(violations) < 10 {
			violations = append(violations, fmt.Sprintf(format, args...))
		}
		ledgerMu.Unlock()
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Readers: every outcome must be complete-and-exact or structured.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := chaosQueries[rng.Intn(len(chaosQueries))]
				got, err := coord.Query(context.Background(), q)
				if err != nil {
					var su *dist.ShardUnavailableError
					if !errors.Is(err, msql.ErrUnavailable) || !errors.As(err, &su) || len(su.Shards) == 0 {
						violation("query %q failed outside the taxonomy: %v", q, err)
						return
					}
					unavailable.Add(1)
					continue
				}
				want := oracleRes[q]
				if diff := resultDiff(got, want); diff != "" {
					violation("query %q returned a wrong (silently partial?) result: %s", q, diff)
					return
				}
				complete.Add(1)
			}
		}(int64(w) + 1)
	}

	// One writer: acknowledged or structured-unavailable, nothing else.
	// Either way the mutation is in the replay log, so the oracle
	// applies it unconditionally and the end state must converge.
	wg.Add(1)
	go func() {
		defer wg.Done()
		k := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			sql := fmt.Sprintf(`INSERT INTO kv VALUES (%d, %d)`, k, k*k)
			err := coord.Exec(context.Background(), sql)
			if err != nil {
				var su *dist.ShardUnavailableError
				if !errors.Is(err, msql.ErrUnavailable) || !errors.As(err, &su) {
					violation("insert failed outside the taxonomy: %v", err)
					return
				}
				writeUnavs.Add(1)
			} else {
				writeAcks.Add(1)
			}
			oracle.MustExec(sql)
			k++
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// The killer: SIGKILL a random shard mid-workload, let the breaker
	// open, restart it empty, and watch the log replay bring it back.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			case <-time.After(300 * time.Millisecond):
			}
			p := procs[rng.Intn(len(procs))]
			p.kill()
			select {
			case <-stop:
				p.start()
				return
			case <-time.After(150 * time.Millisecond):
			}
			p.start()
		}
	}()

	time.Sleep(chaosDuration())
	close(stop)
	wg.Wait()

	ledgerMu.Lock()
	for _, v := range violations {
		t.Errorf("ledger violation: %s", v)
	}
	ledgerMu.Unlock()
	if t.Failed() {
		t.FailNow()
	}
	if complete.Load() == 0 {
		t.Fatal("no query ever completed — the soak exercised nothing")
	}
	t.Logf("ledger: %d complete, %d structured-unavailable reads; %d acked, %d structured-unavailable writes",
		complete.Load(), unavailable.Load(), writeAcks.Load(), writeUnavs.Load())

	// Convergence: once every shard is back, the replay log must make
	// the sharded kv table exactly the oracle's, and the static queries
	// must still answer exactly.
	deadline := time.Now().Add(15 * time.Second)
	for {
		got, err := coord.Query(context.Background(), `SELECT k, v FROM kv ORDER BY k`)
		if err == nil {
			want, oerr := oracle.QueryContext(context.Background(), `SELECT k, v FROM kv ORDER BY k`)
			if oerr != nil {
				t.Fatal(oerr)
			}
			if diff := resultDiff(got, want); diff == "" {
				break
			} else if time.Now().After(deadline) {
				t.Fatalf("sharded kv never converged to the oracle: %s", diff)
			}
		} else if time.Now().After(deadline) {
			t.Fatalf("kv read never succeeded after chaos: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, q := range chaosQueries {
		got, err := coord.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("post-chaos %q: %v", q, err)
		}
		if diff := resultDiff(got, oracleRes[q]); diff != "" {
			t.Fatalf("post-chaos %q diverged: %s", q, diff)
		}
	}

	// The failure envelope must have left evidence in the metrics.
	prom := coord.Local().Metrics().Prometheus()
	for _, name := range []string{
		"msql_shard_retries_total", "msql_shard_hedges_total",
		"msql_shard_breaker_open_total", "msql_shard_failovers_total",
	} {
		if !contains(prom, name) {
			t.Errorf("metric %s missing from Prometheus exposition", name)
		}
	}

	// Goroutine-leak check: with the shard processes dead (their stderr
	// pipe readers reaped) and the coordinator closed (idle connections
	// dropped), the goroutine count must return to the baseline.
	for _, p := range procs {
		p.kill()
	}
	coord.Close()
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= startGoroutines+5 {
			break
		} else if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d at start, %d after close\n%s",
				startGoroutines, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func resultDiff(got, want *msql.Result) string {
	if fmt.Sprint(got.Columns) != fmt.Sprint(want.Columns) {
		return fmt.Sprintf("columns %v vs %v", got.Columns, want.Columns)
	}
	if len(got.Rows) != len(want.Rows) {
		return fmt.Sprintf("%d rows vs %d", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		if fmt.Sprint(got.Rows[i]) != fmt.Sprint(want.Rows[i]) {
			return fmt.Sprintf("row %d: %v vs %v", i, got.Rows[i], want.Rows[i])
		}
	}
	return ""
}

func contains(haystack, needle string) bool {
	return bytes.Contains([]byte(haystack), []byte(needle))
}
