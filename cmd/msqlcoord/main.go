// Command msqlcoord runs the distributed coordinator: it hash-
// partitions tables across N msqld shard nodes and executes measure
// queries scatter-gather over the wire protocol, with retries,
// hedging, failover, per-endpoint circuit breakers, and structured
// shard-unavailability errors. A client talks to it exactly as to a
// single msqld.
//
//	msqld -addr :7501 -shard-id shard-0 &
//	msqld -addr :7502 -shard-id shard-1 &
//	msqlcoord -addr :7433 \
//	    -shard http://127.0.0.1:7501 \
//	    -shard http://127.0.0.1:7502 \
//	    -init schema.sql
//
// Each -shard flag names one shard; give a comma-separated list of
// URLs for a shard with replicas (primary first):
//
//	-shard http://10.0.0.1:7433,http://10.0.0.2:7433
//
// Endpoints:
//
//	POST /query         {"sql": "...", "timeout_ms": 1000}
//	GET  /healthz       liveness
//	GET  /readyz        readiness (503 until every shard is reachable)
//	GET  /metrics       Prometheus text, including msql_shard_* counters
//	GET  /metrics.json  the same snapshot as JSON
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/measures-sql/msql/internal/dist"
	"github.com/measures-sql/msql/msql/client"
)

type shardFlags [][]string

func (s *shardFlags) String() string { return fmt.Sprint([][]string(*s)) }

func (s *shardFlags) Set(v string) error {
	var urls []string
	for _, u := range strings.Split(v, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		urls = append(urls, u)
	}
	if len(urls) == 0 {
		return errors.New("empty shard endpoint list")
	}
	*s = append(*s, urls)
	return nil
}

type partitionFlags map[string]string

func (p partitionFlags) String() string { return fmt.Sprint(map[string]string(p)) }

func (p partitionFlags) Set(v string) error {
	table, col, ok := strings.Cut(v, "=")
	if !ok || table == "" || col == "" {
		return errors.New("want -partition table=column")
	}
	p[strings.ToLower(strings.TrimSpace(table))] = strings.TrimSpace(col)
	return nil
}

func main() {
	var shards shardFlags
	partitions := partitionFlags{}
	var (
		addr          = flag.String("addr", "127.0.0.1:7433", "listen address")
		initFile      = flag.String("init", "", "run a SQL script through the coordinator before serving")
		timeout       = flag.Duration("timeout", 30*time.Second, "per-statement budget, shared by all shard calls of a query")
		hedgeDelay    = flag.Duration("hedge-delay", 50*time.Millisecond, "delay before hedging to a replica (before p99 history accrues)")
		brThreshold   = flag.Int("breaker-threshold", 3, "consecutive failures that open an endpoint's circuit breaker")
		brCooldown    = flag.Duration("breaker-cooldown", 500*time.Millisecond, "open-breaker shed window before a half-open probe")
		retryAttempts = flag.Int("retry-attempts", 4, "transport retry attempts per shard call")
		waitReady     = flag.Duration("wait-ready", 0, "wait up to this long for every shard to come up before -init")
	)
	flag.Var(&shards, "shard", "shard endpoint URL(s), comma-separated primary,replica,... (repeatable; one per shard)")
	flag.Var(partitions, "partition", "partition column override, table=column (repeatable; default: first column)")
	flag.Parse()
	log.SetPrefix("msqlcoord: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	if len(shards) == 0 {
		log.Fatal("at least one -shard is required")
	}
	coord, err := dist.New(dist.Config{
		Shards:           shards,
		PartitionCols:    partitions,
		QueryTimeout:     *timeout,
		Backoff:          client.Backoff{Attempts: *retryAttempts},
		BreakerThreshold: *brThreshold,
		BreakerCooldown:  *brCooldown,
		HedgeDelay:       *hedgeDelay,
	})
	if err != nil {
		log.Fatalf("building coordinator: %v", err)
	}

	if *waitReady > 0 {
		deadline := time.Now().Add(*waitReady)
		for {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			err := coord.Ready(ctx)
			cancel()
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				log.Fatalf("shards not ready after %v: %v", *waitReady, err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	if *initFile != "" {
		data, err := os.ReadFile(*initFile)
		if err != nil {
			log.Fatalf("reading -init script: %v", err)
		}
		if err := coord.Exec(context.Background(), string(data)); err != nil {
			log.Fatalf("running -init script: %v", err)
		}
		log.Printf("ran init script %s", *initFile)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: coord.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("coordinating %d shard(s) on http://%s", len(shards), *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("received %s; shutting down", sig)
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	coord.Close()
	fmt.Fprintln(os.Stderr, "msqlcoord: bye")
}
