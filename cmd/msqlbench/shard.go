package main

// The sharded-execution rows of the -json bench artifact: the same
// scan-filter-aggregate workload scattered across 1/2/4 in-process
// shard servers (real server.Server instances behind HTTP listeners,
// real wire protocol), the gather fallback for a measure query, and
// the failover tail — a replica-backed shard whose primary is killed
// mid-run, so the p99 shows what retry+failover costs instead of an
// error.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"github.com/measures-sql/msql/internal/datagen"
	"github.com/measures-sql/msql/internal/dist"
	"github.com/measures-sql/msql/internal/server"
	"github.com/measures-sql/msql/msql"
	"github.com/measures-sql/msql/msql/client"
)

const shardScatterQ = `SELECT prodName, COUNT(*) AS cnt, SUM(revenue) AS rev,
       SUM(revenue - cost) AS profit
FROM Orders GROUP BY prodName`

const shardGatherQ = `SELECT prodName, AGGREGATE(margin) AS m
FROM (SELECT *, (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE margin
      FROM Orders) AS o
GROUP BY prodName`

// shardFixture is a coordinator over nShards in-process shard servers,
// each shard with `replicas` extra endpoints.
type shardFixture struct {
	coord   *dist.Coordinator
	servers []*httptest.Server
	dbs     []*msql.DB
}

func newShardFixture(nShards, replicas, orders int) (*shardFixture, error) {
	f := &shardFixture{}
	var topology [][]string
	for i := 0; i < nShards; i++ {
		var urls []string
		for r := 0; r <= replicas; r++ {
			db := msql.Open()
			ts := httptest.NewServer(server.New(db, server.Config{
				ShardID: fmt.Sprintf("shard-%d-%d", i, r),
			}).Handler())
			f.servers = append(f.servers, ts)
			f.dbs = append(f.dbs, db)
			urls = append(urls, ts.URL)
		}
		topology = append(topology, urls)
	}
	coord, err := dist.New(dist.Config{
		Shards:       topology,
		QueryTimeout: 60 * time.Second,
		Backoff:      client.Backoff{Attempts: 3, Base: 2 * time.Millisecond, Max: 20 * time.Millisecond, Seed: 5},
	})
	if err != nil {
		f.close()
		return nil, err
	}
	f.coord = coord

	ds := datagen.Generate(datagen.Config{
		Seed: 11, Customers: 100, Products: 100, Orders: orders, Years: 3,
	})
	if err := coord.Exec(context.Background(), datagen.SetupSQL); err != nil {
		f.close()
		return nil, err
	}
	if err := coord.Exec(context.Background(), ds.InsertSQL()); err != nil {
		f.close()
		return nil, err
	}
	return f, nil
}

func (f *shardFixture) close() {
	if f.coord != nil {
		f.coord.Close()
	}
	for _, ts := range f.servers {
		ts.Close()
	}
	for _, db := range f.dbs {
		db.Close()
	}
}

// timeCoordQuery mirrors timeQueryDist for a coordinator.
func timeCoordQuery(c *dist.Coordinator, sql string, reps int) ([]time.Duration, int, error) {
	res, err := c.Query(context.Background(), sql)
	if err != nil {
		return nil, 0, err
	}
	rows := len(res.Rows)
	durs := make([]time.Duration, reps)
	for i := range durs {
		start := time.Now()
		if _, err := c.Query(context.Background(), sql); err != nil {
			return nil, 0, err
		}
		durs[i] = time.Since(start)
	}
	return durs, rows, nil
}

// runShardBench appends the sharded_* rows to the -json artifact.
func runShardBench(results *[]benchResult) error {
	orders := 20000
	reps := 9
	if *quick {
		orders = 2000
	}

	for _, nShards := range []int{1, 2, 4} {
		f, err := newShardFixture(nShards, 0, orders)
		if err != nil {
			return err
		}
		durs, rows, err := timeCoordQuery(f.coord, shardScatterQ, reps)
		if err != nil {
			f.close()
			return err
		}
		p50, p95, p99 := quantiles(durs)
		*results = append(*results, benchResult{
			Name: fmt.Sprintf("sharded_%d", nShards), Strategy: "scatter", Workers: nShards, Orders: orders,
			NsOp:  minDur(durs).Nanoseconds(),
			P50Ns: p50.Nanoseconds(), P95Ns: p95.Nanoseconds(), P99Ns: p99.Nanoseconds(),
			Rows: rows,
		})
		if nShards == 4 {
			// The always-correct fallback, measured on the widest fan-out.
			durs, rows, err = timeCoordQuery(f.coord, shardGatherQ, reps)
			if err != nil {
				f.close()
				return err
			}
			p50, p95, p99 = quantiles(durs)
			*results = append(*results, benchResult{
				Name: "sharded_gather_4", Strategy: "gather", Workers: nShards, Orders: orders,
				NsOp:  minDur(durs).Nanoseconds(),
				P50Ns: p50.Nanoseconds(), P95Ns: p95.Nanoseconds(), P99Ns: p99.Nanoseconds(),
				Rows: rows,
			})
		}
		f.close()
	}

	// Failover tail latency: a 2-shard topology where shard 0 has a
	// replica; the primary dies mid-run and the remaining reps must
	// absorb the retry+failover cost rather than fail.
	f, err := newShardFixture(2, 1, orders)
	if err != nil {
		return err
	}
	defer f.close()
	if _, err := f.coord.Query(context.Background(), shardScatterQ); err != nil {
		return err
	}
	durs := make([]time.Duration, reps)
	var rows int
	for i := range durs {
		if i == reps/2 {
			// SIGKILL equivalent for an in-process server: connections
			// reset, no drain.
			f.servers[0].CloseClientConnections()
			f.servers[0].Close()
		}
		start := time.Now()
		res, err := f.coord.Query(context.Background(), shardScatterQ)
		if err != nil {
			return fmt.Errorf("failover bench rep %d: %w", i, err)
		}
		rows = len(res.Rows)
		durs[i] = time.Since(start)
	}
	p50, p95, p99 := quantiles(durs)
	*results = append(*results, benchResult{
		Name: "sharded_failover_tail", Strategy: "scatter", Workers: 2, Orders: orders,
		NsOp:  minDur(durs).Nanoseconds(),
		P50Ns: p50.Nanoseconds(), P95Ns: p95.Nanoseconds(), P99Ns: p99.Nanoseconds(),
		Rows: rows,
	})
	return nil
}
