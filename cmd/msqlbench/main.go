// Command msqlbench regenerates every table, listing and quantitative
// claim of "Measures in SQL" (Hyde & Fremlin, SIGMOD 2024); it is the
// harness behind EXPERIMENTS.md. Each experiment prints the paper's
// expected artifact next to the value this engine measures.
//
//	msqlbench             # run everything
//	msqlbench -exp E08    # one experiment
//	msqlbench -quick      # smaller sweeps for the timing experiments
//	msqlbench -workers 4  # executor goroutines (0 = one per CPU)
//	msqlbench -cpuprofile cpu.out -exp E21
//	msqlbench -analyze    # print EXPLAIN ANALYZE next to every query
//	msqlbench -trace      # stream lifecycle spans to stderr
//	msqlbench -metrics    # dump each session's Prometheus metrics at exit
//	msqlbench -quick -json > BENCH_smoke.json   # machine-readable results
//	msqlbench -timeout 5s # per-statement wall-clock limit on every session
//	msqlbench -limits rows=5000000,mem=256000000,subq=1000000,depth=64
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/measures-sql/msql/internal/datagen"
	"github.com/measures-sql/msql/internal/lexer"
	"github.com/measures-sql/msql/internal/paperdata"
	"github.com/measures-sql/msql/msql"
)

var (
	quick       = flag.Bool("quick", false, "smaller data sizes for timing experiments")
	workers     = flag.Int("workers", 0, "executor worker goroutines (0 = one per CPU, 1 = serial)")
	vectorized  = flag.Bool("vectorized", false, "enable columnar batch execution in every session")
	analyze     = flag.Bool("analyze", false, "print EXPLAIN ANALYZE after each experiment query")
	trace       = flag.Bool("trace", false, "stream query-lifecycle spans to stderr")
	metricsDump = flag.Bool("metrics", false, "dump each session's metrics (Prometheus text) at exit")
	jsonOut     = flag.Bool("json", false, "run the bench suite and emit JSON results to stdout")
	timeoutFlag = flag.Duration("timeout", 0, "per-statement wall-clock limit applied to every session (0 = none)")
	limitsFlag  = flag.String("limits", "", "resource limits for every session: rows=N,mem=N,subq=N,depth=N")
	dataDir     = flag.String("data-dir", "", "directory for the WAL bench rows of -json (empty = temp dirs)")
	walSyncFlag = flag.String("wal-sync", "", "restrict the -json WAL bench to one fsync policy: always | interval | off (empty = all three)")
)

// parseLimits turns the -limits/-timeout flags into msql.Limits.
// Returns the zero value (unlimited) when neither flag is set.
func parseLimits() (msql.Limits, error) {
	var l msql.Limits
	l.Timeout = *timeoutFlag
	if *limitsFlag == "" {
		return l, nil
	}
	for _, part := range strings.Split(*limitsFlag, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return l, fmt.Errorf("-limits: %q is not key=value", part)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return l, fmt.Errorf("-limits %s: %v", key, err)
		}
		switch key {
		case "rows":
			l.MaxRows = n
		case "mem":
			l.MaxMemBytes = n
		case "subq":
			l.MaxSubqueryEvals = n
		case "depth":
			l.MaxExpansionDepth = int(n)
		default:
			return l, fmt.Errorf("-limits: unknown key %q (want rows, mem, subq, depth)", key)
		}
	}
	return l, nil
}

// sessionLimits is the parsed -limits/-timeout value, applied to every
// DB the harness opens.
var sessionLimits msql.Limits

// sessions tracks every DB the harness opened, for -metrics.
var sessions []*msql.DB

// register applies the harness-wide observability and resource-limit
// flags to a new DB.
func register(db *msql.DB) *msql.DB {
	if *trace {
		db.SetTrace(msql.NewTextTracer(os.Stderr))
	}
	db.SetLimits(sessionLimits)
	db.SetVectorized(*vectorized)
	sessions = append(sessions, db)
	return db
}

func dumpMetrics() {
	for i, db := range sessions {
		fmt.Printf("\n---------------- session %d metrics ----------------\n%s", i+1, db.Metrics().Prometheus())
	}
}

type experiment struct {
	id    string
	title string
	run   func() error
}

func main() {
	expFlag := flag.String("exp", "all", "experiment id (E01..E30) or 'all'")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Parse()

	var err error
	if sessionLimits, err = parseLimits(); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		if err := runJSONBench(); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	experiments := []experiment{
		{"E01", "Paper tables 1-2 (datasets)", e01},
		{"E02-E05", "Listings 1-5: the problem, measures, AGGREGATE, expansion", eListings},
		{"E06-E08", "Listings 6-8: AT (ALL / SET / VISIBLE), ROLLUP", eModifiers},
		{"E09", "Listing 9: measures across joins", e09},
		{"E10", "Listings 10-11: year-over-year and its expansion", e10},
		{"E11", "Listing 12: four equivalent query forms", e11},
		{"E12", "Execution strategies: inline vs memo vs naive (§5.1)", e12},
		{"E13", "Listing 12 forms at scale (§5.1)", e13},
		{"E14", "Conciseness of measure queries (§5.7)", e14},
		{"E15-E18,E20", "Semantic claims: hologram, composability, laws, strategies", eSemantics},
		{"E19", "Planning overhead of measure expansion", e19},
		{"E21", "Parallel execution: speedup by worker count", e21},
		{"E22", "Per-operator metrics: memo vs naive at workers 1 vs 4", e22},
		{"E23", "Cancellation latency: workers 1 vs 4", e23},
		{"E25", "Vectorized execution: row vs columnar batch kernels", e25},
		{"E26", "Prepared statements: cold vs warm plan cache", e26},
		{"E27", "Statement-stats overhead: observability on vs off", e27},
		{"E28", "Durability: WAL insert overhead and crash-recovery time", e28},
		{"E30", "Materialized rollups: dashboard latency over a mutating table", e30},
	}

	failed := 0
	for _, e := range experiments {
		if *expFlag != "all" && !strings.Contains(e.id, *expFlag) {
			continue
		}
		fmt.Printf("\n================ %s — %s ================\n", e.id, e.title)
		if err := e.run(); err != nil {
			fmt.Printf("FAILED: %v\n", err)
			failed++
		}
	}
	if *metricsDump {
		dumpMetrics()
	}
	if failed > 0 {
		pprof.StopCPUProfile()
		os.Exit(1)
	}
}

func paperDB() *msql.DB {
	db := msql.Open()
	db.MustExec(paperdata.All)
	db.SetWorkers(*workers)
	return register(db)
}

func show(db *msql.DB, title, sql string) {
	fmt.Println("--", title)
	res, err := db.Query(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(msql.Format(res))
	if *analyze {
		if txt, err := db.ExplainAnalyze(sql); err == nil {
			fmt.Print(txt)
		}
	}
	fmt.Println()
}

func e01() error {
	db := paperDB()
	show(db, "Table 1: Customers", `SELECT * FROM Customers ORDER BY custName`)
	show(db, "Table 2: Orders", `SELECT * FROM Orders ORDER BY orderDate, prodName`)
	return nil
}

func eListings() error {
	db := paperDB()
	show(db, "Listing 1: summarize Orders by product",
		`SELECT prodName, COUNT(*) AS c,
		        (SUM(revenue) - SUM(cost)) / SUM(revenue) AS profitMargin
		 FROM Orders GROUP BY prodName ORDER BY prodName`)
	show(db, "Listing 2: the broken view (margins averaged at the wrong grain)",
		`SELECT prodName, AVG(profitMargin) AS wrongMargin
		 FROM SummarizedOrders GROUP BY prodName ORDER BY prodName`)
	show(db, "Listings 3-4: the measure view (paper prints 0.60 / 0.47 / 0.67)",
		`SELECT prodName, AGGREGATE(profitMargin) AS profitMargin, COUNT(*) AS c
		 FROM EnhancedOrders GROUP BY prodName ORDER BY prodName`)
	fmt.Println("-- Listing 5: the engine's own expansion of the query above")
	expanded, err := db.Expand(
		`SELECT prodName, AGGREGATE(profitMargin) AS profitMargin, COUNT(*) AS c
		 FROM EnhancedOrders GROUP BY prodName ORDER BY prodName`)
	if err != nil {
		return err
	}
	fmt.Println(expanded)
	fmt.Println()
	show(db, "Listing 5 executed (must match Listings 3-4)", expanded)
	return nil
}

func eModifiers() error {
	db := paperDB()
	show(db, "Listing 6: proportion of total via AT (ALL prodName)",
		`SELECT prodName, sumRevenue,
		        sumRevenue / sumRevenue AT (ALL prodName) AS proportionOfTotalRevenue
		 FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders) AS o
		 GROUP BY prodName ORDER BY prodName`)
	show(db, "Listing 7: AT (SET orderYear = CURRENT orderYear - 1)",
		`SELECT prodName, orderYear, profitMargin,
		        profitMargin AT (SET orderYear = CURRENT orderYear - 1) AS profitMarginLastYear
		 FROM (SELECT *,
		         (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin,
		         YEAR(orderDate) AS orderYear
		       FROM Orders)
		 WHERE orderYear = 2024
		 GROUP BY prodName, orderYear`)
	show(db, "Listing 8: VISIBLE + ROLLUP (paper prints 13/13/17, 3/3/3, 16/16/25)",
		`SELECT o.prodName, COUNT(*) AS c,
		        AGGREGATE(o.sumRevenue) AS rAgg,
		        o.sumRevenue AT (VISIBLE) AS rViz,
		        o.sumRevenue AS r
		 FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders) AS o
		 WHERE o.custName <> 'Bob'
		 GROUP BY ROLLUP(o.prodName)
		 ORDER BY o.prodName NULLS LAST`)
	return nil
}

func e09() error {
	db := paperDB()
	show(db, "Listing 9: weighted vs measure vs visible average age",
		`WITH EnhancedCustomers AS (
		   SELECT *, AVG(custAge) AS MEASURE avgAge FROM Customers)
		 SELECT o.prodName, COUNT(*) AS orderCount,
		        AVG(c.custAge) AS weightedAvgAge,
		        c.avgAge AS avgAge,
		        c.avgAge AT (VISIBLE) AS visibleAvgAge
		 FROM Orders AS o
		 JOIN EnhancedCustomers AS c USING (custName)
		 WHERE c.custAge >= 18
		 GROUP BY o.prodName ORDER BY o.prodName`)
	return nil
}

func e10() error {
	db := paperDB()
	src := `SELECT prodName, YEAR(orderDate) AS orderYear,
	               sumRevenue / sumRevenue AT (SET orderYear = CURRENT orderYear - 1) AS ratio
	        FROM OrdersWithRevenue
	        GROUP BY prodName, YEAR(orderDate)
	        ORDER BY prodName, orderYear`
	show(db, "Listing 10: year-over-year revenue ratio", src)
	fmt.Println("-- Listing 11: the engine's expansion")
	expanded, err := db.Expand(src)
	if err != nil {
		return err
	}
	fmt.Println(expanded)
	fmt.Println()
	show(db, "Listing 11 executed (must match Listing 10)", expanded)
	return nil
}

func e11() error {
	n := 20000
	if *quick {
		n = 2000
	}
	forms := listing12Forms()
	order := []string{"correlated", "selfjoin", "window", "measure"}

	check := func(db *msql.DB, requireAll bool) (map[string][]string, error) {
		sigs := map[string][]string{}
		for _, name := range order {
			res, err := db.Query(forms[name] + " ORDER BY 1, 2")
			if err != nil {
				return nil, fmt.Errorf("%s: %v", name, err)
			}
			sigs[name] = signature(res)
		}
		for _, name := range order[1:] {
			same := equalSigs(sigs[name], sigs["correlated"])
			fmt.Printf("  %-12s %6d rows  identical to correlated: %v\n",
				name, len(sigs[name]), same)
			if requireAll && !same {
				return nil, fmt.Errorf("form %s disagrees", name)
			}
		}
		return sigs, nil
	}

	fmt.Printf("without NULL product names (%d orders):\n", n)
	if _, err := check(loadSynthetic(n, 20, 0), true); err != nil {
		return err
	}

	// With NULL keys the window form legitimately diverges: PARTITION BY
	// groups NULLs together (IS NOT DISTINCT semantics) while the `=` of
	// the correlated/self-join/measure forms drops them — a real SQL
	// subtlety the paper's equivalence implicitly scopes to non-null
	// keys. The other three must still agree.
	fmt.Printf("with 2%% NULL product names:\n")
	sigs, err := check(loadSynthetic(n, 20, 0.02), false)
	if err != nil {
		return err
	}
	if !equalSigs(sigs["selfjoin"], sigs["correlated"]) || !equalSigs(sigs["measure"], sigs["correlated"]) {
		return fmt.Errorf("self-join or measure form disagrees with correlated under NULL keys")
	}
	if equalSigs(sigs["window"], sigs["correlated"]) {
		fmt.Println("  note: window form agreed even with NULL keys (no NULL row qualified)")
	} else {
		fmt.Println("  window form differs on NULL keys, as SQL semantics dictate (documented)")
	}
	return nil
}

func equalSigs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func e12() error {
	sizes := []int{1000, 10000, 50000}
	groups := []int{10, 100}
	if *quick {
		sizes = []int{1000, 5000}
	}
	fmt.Printf("%-8s %-8s %12s %12s %12s %14s\n",
		"orders", "groups", "inline", "memo", "naive", "plain SQL")
	for _, n := range sizes {
		for _, g := range groups {
			db := loadSynthetic(n, g, 0)
			plain := timeQuery(db, `
				SELECT prodName, (SUM(revenue) - SUM(cost)) / SUM(revenue) AS m
				FROM Orders GROUP BY prodName`)
			q := `SELECT prodName, AGGREGATE(margin) AS m
			      FROM (SELECT *, (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE margin
			            FROM Orders) AS o
			      GROUP BY prodName`
			db.SetStrategy(msql.StrategyDefault)
			inline := timeQuery(db, q)
			inlineScans := db.LastStats().RowsScanned
			db.SetStrategy(msql.StrategyMemo)
			memo := timeQuery(db, q)
			memoScans := db.LastStats().RowsScanned
			naive := time.Duration(0)
			if n*g <= 1000*100 {
				db.SetStrategy(msql.StrategyNaive)
				naive = timeQuery(db, q)
			}
			naiveStr := "skipped"
			if naive > 0 {
				naiveStr = naive.String()
			}
			db.SetStrategy(msql.StrategyDefault)
			fmt.Printf("%-8d %-8d %12v %12v %12s %14v   (rows scanned: inline %d, memo %d)\n",
				n, g, inline, memo, naiveStr, plain, inlineScans, memoScans)
		}
	}
	fmt.Println("shape check: inline ≈ plain SQL (one scan); memo = one scan per distinct context;")
	fmt.Println("naive grows with groups × rows (the cost the paper's strategies avoid)")
	return nil
}

func e13() error {
	sizes := []int{1000, 10000}
	if *quick {
		sizes = []int{1000}
	}
	forms := listing12Forms()
	fmt.Printf("%-8s %12s %12s %12s %12s | %12s %14s\n",
		"orders", "correlated", "selfjoin", "window", "measure", "corr (memo)", "corr (naive)")
	for _, n := range sizes {
		db := loadSynthetic(n, 20, 0)
		times := map[string]time.Duration{}
		for name, sql := range forms {
			times[name] = timeQuery(db, sql)
		}
		db.SetStrategy(msql.StrategyMemo)
		memo := timeQuery(db, forms["correlated"])
		naive := time.Duration(0)
		if n <= 5000 {
			db.SetStrategy(msql.StrategyNaive)
			naive = timeQuery(db, forms["correlated"])
		}
		db.SetStrategy(msql.StrategyDefault)
		naiveStr := "skipped"
		if naive > 0 {
			naiveStr = naive.String()
		}
		fmt.Printf("%-8d %12v %12v %12v %12v | %12v %14s\n",
			n, times["correlated"], times["selfjoin"], times["window"], times["measure"], memo, naiveStr)
	}
	fmt.Println("shape check: with WinMagic (default) all four forms converge;")
	fmt.Println("memoized correlation costs one scan per product; naive correlation blows up")
	return nil
}

func e14() error {
	db := paperDB()
	queries := map[string]string{
		"margin by product": `SELECT prodName, AGGREGATE(profitMargin) AS m
		                      FROM EnhancedOrders GROUP BY prodName`,
		"share of total": `SELECT prodName, AGGREGATE(sumRevenue) AS r,
		                          sumRevenue / sumRevenue AT (ALL prodName) AS share
		                   FROM OrdersWithRevenue GROUP BY prodName`,
		"year over year": `SELECT prodName, YEAR(orderDate) AS orderYear,
		                          sumRevenue / sumRevenue AT (SET orderYear = CURRENT orderYear - 1) AS ratio
		                   FROM OrdersWithRevenue GROUP BY prodName, YEAR(orderDate)`,
	}
	fmt.Printf("%-20s %16s %16s %8s\n", "query", "measure tokens", "expanded tokens", "ratio")
	for name, sql := range queries {
		expanded, err := db.Expand(sql)
		if err != nil {
			return err
		}
		mt := tokenCount(sql)
		et := tokenCount(expanded)
		fmt.Printf("%-20s %16d %16d %7.1fx\n", name, mt, et, float64(et)/float64(mt))
	}
	return nil
}

func e19() error {
	db := paperDB()
	measureSQL := `SELECT prodName, AGGREGATE(profitMargin) AS m
	               FROM EnhancedOrders GROUP BY prodName`
	plainSQL := `SELECT prodName, (SUM(revenue) - SUM(cost)) / SUM(revenue) AS m
	             FROM Orders GROUP BY prodName`
	timePlan := func(sql string) time.Duration {
		const reps = 200
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := db.Explain(sql); err != nil {
				panic(err)
			}
		}
		return time.Since(start) / reps
	}
	fmt.Printf("plan measure query: %v\n", timePlan(measureSQL))
	fmt.Printf("plan plain query:   %v\n", timePlan(plainSQL))
	start := time.Now()
	for i := 0; i < 200; i++ {
		if _, err := db.Expand(measureSQL); err != nil {
			return err
		}
	}
	fmt.Printf("full SQL expansion: %v\n", time.Since(start)/200)
	return nil
}

// e21 measures the morsel-parallel executor: the same measure-heavy
// query at increasing worker counts, with a row-identity check against
// the serial run. Speedups require spare CPUs (see the GOMAXPROCS line
// in the output); on a single-CPU host all worker counts time alike.
func e21() error {
	sizes := []int{10000, 50000}
	if *quick {
		sizes = []int{2000, 10000}
	}
	workerCounts := []int{1, 2, 4, 8}
	fmt.Printf("GOMAXPROCS=%d NumCPU=%d (speedup is bounded by available CPUs)\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU())
	q := `SELECT prodName, AGGREGATE(margin) AS m, AGGREGATE(rev) AS r, rev AT (ALL) AS tot
	      FROM (SELECT *, SUM(revenue) AS MEASURE rev,
	                   (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE margin
	            FROM Orders) AS o
	      GROUP BY prodName`
	fmt.Printf("%-8s |", "orders")
	for _, w := range workerCounts {
		fmt.Printf(" %10s", fmt.Sprintf("w=%d", w))
	}
	fmt.Printf(" | %-10s %s\n", "speedup@4", "identical")
	for _, n := range sizes {
		db := loadSynthetic(n, 100, 0)
		db.SetStrategy(msql.StrategyMemo)
		var baseSig []string
		var times []time.Duration
		identical := true
		for _, w := range workerCounts {
			db.SetWorkers(w)
			times = append(times, timeQuery(db, q))
			res, err := db.Query(q)
			if err != nil {
				return err
			}
			sig := signature(res)
			if baseSig == nil {
				baseSig = sig
			} else if !equalSigs(sig, baseSig) {
				identical = false
			}
		}
		fmt.Printf("%-8d |", n)
		for _, d := range times {
			fmt.Printf(" %10v", d)
		}
		speedup := float64(times[0]) / float64(times[2])
		fmt.Printf(" | %-10s %v\n", fmt.Sprintf("%.2fx", speedup), identical)
		if !identical {
			return fmt.Errorf("parallel output differs from serial output at %d orders", n)
		}
	}
	fmt.Println("rows are bit-identical at every worker count (order-preserving morsel reassembly)")
	return nil
}

// e22 renders EXPLAIN ANALYZE for a share-of-total measure query under
// StrategyMemo vs StrategyNaive at workers 1 vs 4: per-operator rows and
// wall time, worker fan-out, and per measure subquery the split between
// actual evaluations and memo hits.
func e22() error {
	n := 10000
	if *quick {
		n = 2000
	}
	q := `SELECT prodName, AGGREGATE(rev) AS r,
	             rev / rev AT (ALL prodName) AS share
	      FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS o
	      GROUP BY prodName`
	for _, st := range []struct {
		label string
		s     msql.Strategy
	}{{"memo", msql.StrategyMemo}, {"naive", msql.StrategyNaive}} {
		for _, w := range []int{1, 4} {
			db := loadSynthetic(n, 20, 0)
			db.SetStrategy(st.s)
			db.SetWorkers(w)
			txt, err := db.ExplainAnalyze(q)
			if err != nil {
				return err
			}
			fmt.Printf("-- strategy=%s workers=%d (%d orders)\n%s\n", st.label, w, n, txt)
		}
	}
	fmt.Println("shape check: memo shows hits>0 on the grand-total context (one eval, the")
	fmt.Println("rest served from cache); naive shows hits=0 and an eval per distinct call")
	return nil
}

// e23 measures cancellation latency: the time from cancel() until
// QueryContext returns ErrCanceled, with the query reliably mid-flight.
// Workers=4 must drain its in-flight goroutines too, so this checks the
// cooperative-cancellation budget (50ms) under parallel execution.
func e23() error {
	n := 50000
	if *quick {
		n = 10000
	}
	q := `SELECT prodName, AGGREGATE(margin) AS m, AGGREGATE(rev) AS r, rev AT (ALL) AS tot
	      FROM (SELECT *, SUM(revenue) AS MEASURE rev,
	                   (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE margin
	            FROM Orders) AS o
	      GROUP BY prodName`
	fmt.Println("latency from cancel() to QueryContext returning ErrCanceled (budget: 50ms)")
	fmt.Printf("%-9s %12s %12s %12s %8s\n", "workers", "full query", "avg cancel", "max cancel", "hits")
	for _, w := range []int{1, 4} {
		db := loadSynthetic(n, 100, 0)
		db.SetStrategy(msql.StrategyMemo)
		db.SetWorkers(w)
		full := timeQuery(db, q)
		const reps = 10
		var total, worst time.Duration
		hits := 0
		for i := 0; i < reps; i++ {
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				_, err := db.QueryContext(ctx, q)
				done <- err
			}()
			time.Sleep(full / 3) // let the query get mid-flight
			start := time.Now()
			cancel()
			err := <-done
			lat := time.Since(start)
			if err == nil {
				continue // the query beat the cancellation; not a sample
			}
			if !errors.Is(err, msql.ErrCanceled) {
				return fmt.Errorf("workers=%d: want ErrCanceled, got %v", w, err)
			}
			hits++
			total += lat
			if lat > worst {
				worst = lat
			}
		}
		if hits == 0 {
			fmt.Printf("%-9d %12v %12s %12s %8d  (query too fast to cancel; rerun without -quick)\n",
				w, full, "-", "-", hits)
			continue
		}
		avg := total / time.Duration(hits)
		fmt.Printf("%-9d %12v %12v %12v %8d\n", w, full, avg, worst, hits)
		if worst > 50*time.Millisecond {
			return fmt.Errorf("workers=%d: worst cancellation latency %v exceeds the 50ms budget", w, worst)
		}
	}
	fmt.Println("shape check: latency is bounded by the 1024-row tick interval, not by query size;")
	fmt.Println("workers=4 also drains its sibling goroutines before returning")
	return nil
}

// e25 measures vectorized execution: the scan-filter-aggregate workload
// on one core, row engine vs columnar batch kernels, plus the batch and
// kernel/fallback counters as EXPLAIN ANALYZE reports them.
func e25() error {
	n := 50000
	if *quick {
		n = 10000
	}
	q := `SELECT prodName, COUNT(*) AS cnt, SUM(revenue) AS rev,
	             SUM(revenue - cost) AS profit
	      FROM Orders WHERE revenue > 20 AND cost < 60
	      GROUP BY prodName`
	db := loadSynthetic(n, 20, 0)
	db.SetWorkers(1)
	db.SetVectorized(false)
	row := timeQuery(db, q)
	db.SetVectorized(true)
	vec := timeQuery(db, q)
	fmt.Printf("%-8s %12s %12s %10s\n", "orders", "row", "vectorized", "speedup")
	fmt.Printf("%-8d %12v %12v %9.2fx\n", n, row, vec, float64(row)/float64(vec))
	txt, err := db.ExplainAnalyze(q)
	if err != nil {
		return err
	}
	fmt.Println("-- EXPLAIN ANALYZE (vectorized):")
	fmt.Print(txt)
	fmt.Println("shape check: results are identical by construction (the differential harness")
	fmt.Println("gates this); the speedup comes from batch kernels amortizing per-row dispatch")
	return nil
}

// e26 measures prepared-statement execution against the plan cache on
// the E25 scan-filter-aggregate shape, vectorized. Three modes, per
// worker count:
//
//   - cold: db.Query with inline literals — parse, bind, optimize, and
//     vectorized compile on every repetition (no cache involvement);
//   - warm-varied: Stmt.Query with a different binding each repetition —
//     the cached plan and compiled pipeline are reused, only execution
//     repeats;
//   - warm-memo: Stmt.Query with the identical binding each repetition —
//     after the first execution the result comes from the entry's
//     identical-binding memo without touching the executor.
//
// The ≥2x acceptance gate is on warm-memo, the dashboard re-issue case;
// warm-varied is reported alongside so plan-reuse-only gains are not
// conflated with result memoization.
func e26() error {
	n := 50000
	if *quick {
		n = 10000
	}
	const reps = 20
	coldQ := `SELECT prodName, COUNT(*) AS cnt, SUM(revenue) AS rev,
	                 SUM(revenue - cost) AS profit
	          FROM Orders WHERE revenue > 20 AND cost < 60
	          GROUP BY prodName`
	prepQ := `SELECT prodName, COUNT(*) AS cnt, SUM(revenue) AS rev,
	                 SUM(revenue - cost) AS profit
	          FROM Orders WHERE revenue > $1 AND cost < $2
	          GROUP BY prodName`
	fmt.Printf("%-8s %12s %14s %12s %14s %12s\n",
		"workers", "cold", "warm-varied", "speedup", "warm-memo", "speedup")
	var memoSpeedup1 float64
	for _, w := range []int{1, 4} {
		db := loadSynthetic(n, 20, 0)
		db.SetWorkers(w)
		db.SetVectorized(true)

		avg := func(run func(i int)) time.Duration {
			run(0) // warmup
			start := time.Now()
			for i := 1; i <= reps; i++ {
				run(i)
			}
			return time.Since(start) / reps
		}
		cold := avg(func(int) {
			if _, err := db.Query(coldQ); err != nil {
				panic(err)
			}
		})
		stmt, err := db.Prepare(prepQ)
		if err != nil {
			return err
		}
		// Distinct bindings every repetition: the plan and pipeline are
		// reused but each execution runs for real (the memo never hits
		// because no binding repeats).
		varied := avg(func(i int) {
			if _, err := stmt.Query(int64(20+i), int64(60+i)); err != nil {
				panic(err)
			}
		})
		// The identical binding every repetition: from the second
		// execution on, the result memo answers without executing.
		memo := avg(func(int) {
			if _, err := stmt.Query(int64(20), int64(60)); err != nil {
				panic(err)
			}
		})
		vs, ms := float64(cold)/float64(varied), float64(cold)/float64(memo)
		if w == 1 {
			memoSpeedup1 = ms
		}
		fmt.Printf("%-8d %12v %14v %11.2fx %14v %11.2fx\n", w, cold, varied, vs, memo, ms)
		pc := db.PlanCacheStats()
		fmt.Printf("         plan cache: hits=%d misses=%d memo_hits=%d entries=%d\n",
			pc.Hits, pc.Misses, pc.MemoHits, pc.Entries)
	}
	fmt.Println("shape check: warm-varied reuses the cached plan + compiled pipeline (planning is")
	fmt.Println("a small fraction of this shape's cost); warm-memo is the dashboard re-issue case,")
	fmt.Println("answered from the entry's identical-binding result memo")
	if memoSpeedup1 < 2 {
		return fmt.Errorf("warm-memo speedup %.2fx at workers=1 is below the 2x acceptance gate", memoSpeedup1)
	}
	return nil
}

// e27 measures the observability tax: the E25 scan-filter-aggregate
// workload with the statement-stats store enabled (the default) versus
// disabled, reported as p50/p95/p99 over the sample. The store is one
// fingerprint lookup plus a handful of atomic adds per statement, so the
// median overhead must stay under 5% (warn) / 15% (fail — the wider gate
// absorbs single-CPU CI noise).
func e27() error {
	n := 50000
	if *quick {
		n = 10000
	}
	const reps = 30
	q := `SELECT prodName, COUNT(*) AS cnt, SUM(revenue) AS rev,
	             SUM(revenue - cost) AS profit
	      FROM Orders WHERE revenue > 20 AND cost < 60
	      GROUP BY prodName`
	db := loadSynthetic(n, 20, 0)
	db.SetWorkers(1)
	run := func(on bool) (p50, p95, p99 time.Duration) {
		db.ResetStatementStats()
		db.SetStatementStats(on)
		return quantiles(timeQueryDist(db, q, reps))
	}
	onP50, onP95, onP99 := run(true)
	stats := db.StatementStats()
	offP50, offP95, offP99 := run(false)
	db.SetStatementStats(true)

	fmt.Printf("%d orders, %d reps per mode\n", n, reps)
	fmt.Printf("%-14s %12s %12s %12s\n", "stats", "p50", "p95", "p99")
	fmt.Printf("%-14s %12v %12v %12v\n", "enabled", onP50, onP95, onP99)
	fmt.Printf("%-14s %12v %12v %12v\n", "disabled", offP50, offP95, offP99)
	for _, st := range stats {
		if st.Calls > 1 {
			fmt.Printf("stats store recorded: calls=%d rows=%d p99_exec=%.2fms  %s\n",
				st.Calls, st.Rows, float64(st.Exec.P99Ns)/1e6, st.Fingerprint)
		}
	}
	overhead := float64(onP50-offP50) / float64(offP50) * 100
	fmt.Printf("p50 overhead with statement stats: %+.2f%%\n", overhead)
	switch {
	case overhead > 15:
		return fmt.Errorf("statement-stats overhead %.2f%% exceeds the 15%% gate", overhead)
	case overhead > 5:
		fmt.Println("WARNING: overhead above the 5% target (noisy host?); gate is 15%")
	default:
		fmt.Println("shape check: overhead under the 5% target — per-statement cost is one")
		fmt.Println("map lookup plus atomic counter/histogram updates")
	}
	return nil
}

// e28 measures the durability tax and the recovery path: single-row
// INSERT latency through the write-ahead log at each fsync policy
// against an in-memory baseline, then cold-start recovery time over the
// directory the workload wrote — once replaying the full log tail, once
// after a checkpoint (snapshot-only, zero records replayed). The
// acceptance gate is on the `interval` policy, the deployment default
// for throughput-minded installs: its p50 insert overhead over the
// in-memory baseline must stay under 25% (warn above 15%).
func e28() error {
	n := 2000
	if *quick {
		n = 500
	}
	insertLoop := func(db *msql.DB) ([]time.Duration, error) {
		if err := db.Exec(`CREATE TABLE e28 (a INTEGER, b VARCHAR)`); err != nil {
			return nil, err
		}
		durs := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			sql := fmt.Sprintf(`INSERT INTO e28 VALUES (%d, 'row')`, i)
			start := time.Now()
			if err := db.Exec(sql); err != nil {
				return nil, err
			}
			durs = append(durs, time.Since(start))
		}
		return durs, nil
	}

	memDurs, err := insertLoop(msql.Open())
	if err != nil {
		return err
	}
	memP50, memP95, memP99 := quantiles(memDurs)

	fmt.Printf("%d single-row inserts per mode\n", n)
	fmt.Printf("%-10s %12s %12s %12s %10s %14s %16s\n",
		"wal-sync", "p50", "p95", "p99", "vs mem", "recover(log)", "recover(snap)")
	fmt.Printf("%-10s %12v %12v %12v %10s\n", "(memory)", memP50, memP95, memP99, "1.00x")

	var intervalOverhead float64
	for _, pol := range []string{"always", "interval", "off"} {
		p, err := msql.ParseSyncPolicy(pol)
		if err != nil {
			return err
		}
		dir, err := os.MkdirTemp("", "msqlbench-e28-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		db, err := msql.OpenDir(dir, msql.WithSyncPolicy(p))
		if err != nil {
			return err
		}
		durs, err := insertLoop(db)
		if err != nil {
			return err
		}
		if err := db.Close(); err != nil {
			return err
		}
		p50, p95, p99 := quantiles(durs)
		ratio := float64(p50) / float64(memP50)
		if pol == "interval" {
			intervalOverhead = (ratio - 1) * 100
		}

		// Cold start replaying the full n+1-record log tail.
		start := time.Now()
		db, err = msql.OpenDir(dir, msql.WithSyncPolicy(p))
		if err != nil {
			return err
		}
		logRecovery := time.Since(start)
		replayed := db.WALStats().RecoveredRecords
		// Checkpoint, then cold start from the snapshot alone.
		if err := db.Checkpoint(); err != nil {
			return err
		}
		if err := db.Close(); err != nil {
			return err
		}
		start = time.Now()
		db, err = msql.OpenDir(dir, msql.WithSyncPolicy(p))
		if err != nil {
			return err
		}
		snapRecovery := time.Since(start)
		if got := db.MustQuery(`SELECT COUNT(*) FROM e28`).Rows[0][0].I; got != int64(n) {
			return fmt.Errorf("recovery under %s: %d rows, want %d", pol, got, n)
		}
		if rr := db.WALStats().RecoveredRecords; rr != 0 {
			return fmt.Errorf("snapshot-only recovery replayed %d records, want 0", rr)
		}
		db.Close()

		fmt.Printf("%-10s %12v %12v %12v %9.2fx %11v/%dr %16v\n",
			pol, p50, p95, p99, ratio, logRecovery, replayed, snapRecovery)
	}

	fmt.Printf("interval-sync p50 insert overhead vs in-memory: %+.2f%%\n", intervalOverhead)
	switch {
	case intervalOverhead > 25:
		return fmt.Errorf("interval-sync insert overhead %.2f%% exceeds the 25%% gate", intervalOverhead)
	case intervalOverhead > 15:
		fmt.Println("WARNING: overhead above the 15% target (noisy host?); gate is 25%")
	default:
		fmt.Println("shape check: at interval sync an insert pays one buffered log append")
		fmt.Println("(encode + CRC + write to the OS page cache); fsync cost is paid by the")
		fmt.Println("flusher off the commit path. always-sync pays the full fsync per commit.")
	}
	return nil
}

// rollupInsertBatch renders one INSERT of `rows` synthetic orders. The
// keys vary by round so batches both extend existing groups and mint
// new (prodName, custName) pairs, exercising the lattice's in-place
// fold and group creation paths.
func rollupInsertBatch(round, rows int) string {
	var b strings.Builder
	b.WriteString("INSERT INTO Orders VALUES ")
	for i := 0; i < rows; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "('prod%03d', 'cust%04d', DATE '2024-%02d-%02d', %d, %d)",
			(round*7+i)%100, (round*13+i)%100,
			1+(round+i)%12, 1+(round*3+i)%28,
			10+(round+i)%90, 5+(round+i)%40)
	}
	return b.String()
}

// e30 measures the materialized rollup lattice: repeated dashboard
// aggregations answered from per-group aggregate states instead of
// base-table scans, including under interleaved INSERT batches that
// exercise incremental maintenance. Gate: the single-key dashboard
// query must be at least 5x faster at p50 with the lattice on.
func e30() error {
	n := 50000
	if *quick {
		n = 5000
	}
	const reps = 9
	queries := []struct{ name, sql string }{
		{"by_product", `SELECT prodName, COUNT(*) AS cnt, SUM(revenue) AS rev,
		                       SUM(revenue - cost) AS profit
		                FROM Orders GROUP BY prodName`},
		{"by_prod_cust", `SELECT prodName, custName, SUM(revenue) AS rev
		                  FROM Orders GROUP BY prodName, custName`},
		{"rollup_2d", `SELECT prodName, custName, SUM(revenue) AS rev
		               FROM Orders GROUP BY ROLLUP(prodName, custName)`},
	}
	fmt.Printf("%d orders; %d timed reps per mode after warmup\n", n, reps)
	fmt.Printf("%-14s %-10s %12s %12s %12s %10s\n", "query", "mode", "p50", "p95", "p99", "speedup")
	var gate float64
	for _, q := range queries {
		db := loadSynthetic(n, 100, 0)
		offDurs := timeQueryDist(db, q.sql, reps)
		offRes, err := db.Query(q.sql)
		if err != nil {
			return err
		}
		offP50, offP95, offP99 := quantiles(offDurs)
		fmt.Printf("%-14s %-10s %12v %12v %12v %10s\n", q.name, "direct", offP50, offP95, offP99, "1.00x")

		db.SetRollups(true)
		onDurs := timeQueryDist(db, q.sql, reps)
		onRes, err := db.Query(q.sql)
		if err != nil {
			return err
		}
		onSig, offSig := signature(onRes), signature(offRes)
		if len(onSig) != len(offSig) {
			return fmt.Errorf("%s: lattice returned %d rows, direct %d", q.name, len(onSig), len(offSig))
		}
		for i := range offSig {
			if onSig[i] != offSig[i] {
				return fmt.Errorf("%s row %d: lattice %q != direct %q", q.name, i, onSig[i], offSig[i])
			}
		}
		onP50, onP95, onP99 := quantiles(onDurs)
		speedup := float64(offP50) / float64(onP50)
		if q.name == "by_product" {
			gate = speedup
		}
		fmt.Printf("%-14s %-10s %12v %12v %12v %9.2fx\n", "", "lattice", onP50, onP95, onP99, speedup)

		// Mutating: an INSERT batch lands between every timed query, so
		// each rep pays incremental maintenance plus the lattice read.
		mutDurs := make([]time.Duration, reps)
		for i := range mutDurs {
			if err := db.Exec(rollupInsertBatch(i, 20)); err != nil {
				return err
			}
			start := time.Now()
			if _, err := db.Query(q.sql); err != nil {
				return err
			}
			mutDurs[i] = time.Since(start)
		}
		mutRes, err := db.Query(q.sql)
		if err != nil {
			return err
		}
		// Counters must be read before disabling detaches the lattice.
		st := db.RollupStats()
		// The mutated table must still agree with direct execution.
		db.SetRollups(false)
		directRes, err := db.Query(q.sql)
		if err != nil {
			return err
		}
		mutSig, dirSig := signature(mutRes), signature(directRes)
		if len(mutSig) != len(dirSig) {
			return fmt.Errorf("%s mutating: lattice %d rows, direct %d", q.name, len(mutSig), len(dirSig))
		}
		for i := range dirSig {
			if mutSig[i] != dirSig[i] {
				return fmt.Errorf("%s mutating row %d: lattice %q != direct %q", q.name, i, mutSig[i], dirSig[i])
			}
		}
		mutP50, mutP95, mutP99 := quantiles(mutDurs)
		fmt.Printf("%-14s %-10s %12v %12v %12v %9.2fx\n", "", "mutating", mutP50, mutP95, mutP99,
			float64(offP50)/float64(mutP50))
		if st.Hits == 0 {
			return fmt.Errorf("%s: lattice recorded no hits: %+v", q.name, st)
		}
		fmt.Printf("%-14s %-10s hits=%d builds=%d rebuilds=%d incr=%d inval=%d\n",
			"", "counters", st.Hits, st.Builds, st.Rebuilds, st.IncrementalRows, st.Invalidations)
	}
	fmt.Printf("by_product p50 speedup: %.2fx (gate: >= 5x)\n", gate)
	if gate < 5 {
		return fmt.Errorf("rollup p50 speedup %.2fx below the 5x gate", gate)
	}
	return nil
}

// ---------------------------------------------------------------------------
// -json bench suite

// benchResult is one machine-readable measurement, suitable for
// committing as BENCH_*.json or diffing across commits in CI.
type benchResult struct {
	Name          string `json:"name"`
	Strategy      string `json:"strategy"`
	Workers       int    `json:"workers"`
	Orders        int    `json:"orders"`
	NsOp          int64  `json:"ns_op"`
	P50Ns         int64  `json:"p50_ns"`
	P95Ns         int64  `json:"p95_ns"`
	P99Ns         int64  `json:"p99_ns"`
	Rows          int    `json:"rows"`
	RowsScanned   int64  `json:"rows_scanned"`
	SubqueryEvals int64  `json:"subquery_evals"`
	CacheHits     int64  `json:"cache_hits"`
	Vectorized    bool   `json:"vectorized"`
	VecBatches    int64  `json:"vec_batches"`
}

// runJSONBench times the canonical measure-aggregation query across
// strategies and worker counts and emits a JSON array on stdout.
func runJSONBench() error {
	n := 20000
	if *quick {
		n = 2000
	}
	measureQ := `SELECT prodName, AGGREGATE(margin) AS m
	             FROM (SELECT *, (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE margin
	                   FROM Orders) AS o
	             GROUP BY prodName`
	plainQ := `SELECT prodName, (SUM(revenue) - SUM(cost)) / SUM(revenue) AS m
	           FROM Orders GROUP BY prodName`
	strategies := []struct {
		label string
		s     msql.Strategy
	}{
		{"default", msql.StrategyDefault},
		{"memo", msql.StrategyMemo},
		{"naive", msql.StrategyNaive},
	}
	var results []benchResult
	for _, w := range []int{1, 4} {
		db := loadSynthetic(n, 100, 0)
		db.SetWorkers(w)
		measure := func(name, strategy, sql string, vec bool) error {
			db.SetVectorized(vec)
			durs := timeQueryDist(db, sql, 9)
			p50, p95, p99 := quantiles(durs)
			res, err := db.Query(sql)
			if err != nil {
				return err
			}
			st := db.LastStats()
			results = append(results, benchResult{
				Name: name, Strategy: strategy, Workers: w, Orders: n,
				NsOp:  minDur(durs).Nanoseconds(),
				P50Ns: p50.Nanoseconds(), P95Ns: p95.Nanoseconds(), P99Ns: p99.Nanoseconds(),
				Rows:          len(res.Rows),
				RowsScanned:   st.RowsScanned,
				SubqueryEvals: st.SubqueryEvals,
				CacheHits:     st.SubqueryCacheHits,
				Vectorized:    vec,
				VecBatches:    st.VecBatches,
			})
			return nil
		}
		if err := measure("plain_sql", "none", plainQ, false); err != nil {
			return err
		}
		// E25: the scan-filter-aggregate workload, row vs columnar.
		scanQ := `SELECT prodName, COUNT(*) AS cnt, SUM(revenue) AS rev,
		                 SUM(revenue - cost) AS profit
		          FROM Orders WHERE revenue > 20 AND cost < 60
		          GROUP BY prodName`
		for _, vec := range []bool{false, true} {
			if err := measure("scan_filter_agg", "none", scanQ, vec); err != nil {
				return err
			}
		}
		// E26: the same shape through the plan cache. prepared_cold is
		// db.Query (full replan per run), prepared_warm re-executes the
		// cached pipeline with varied bindings, prepared_warm_memo hits
		// the identical-binding result memo.
		db.SetVectorized(true)
		prepQ := `SELECT prodName, COUNT(*) AS cnt, SUM(revenue) AS rev,
		                 SUM(revenue - cost) AS profit
		          FROM Orders WHERE revenue > $1 AND cost < $2
		          GROUP BY prodName`
		if err := measure("prepared_cold", "none", scanQ, true); err != nil {
			return err
		}
		stmt, err := db.Prepare(prepQ)
		if err != nil {
			return err
		}
		timeStmt := func(name string, args func(i int) [2]int64) error {
			if _, err := stmt.Query(args(0)[0], args(0)[1]); err != nil {
				return err
			}
			var durs []time.Duration
			var rows int
			for i := 1; i <= 5; i++ {
				a := args(i)
				start := time.Now()
				res, err := stmt.Query(a[0], a[1])
				if err != nil {
					return err
				}
				durs = append(durs, time.Since(start))
				rows = len(res.Rows)
			}
			p50, p95, p99 := quantiles(durs)
			results = append(results, benchResult{
				Name: name, Strategy: "none", Workers: w, Orders: n,
				NsOp:  minDur(durs).Nanoseconds(),
				P50Ns: p50.Nanoseconds(), P95Ns: p95.Nanoseconds(), P99Ns: p99.Nanoseconds(),
				Rows: rows, Vectorized: true,
			})
			return nil
		}
		if err := timeStmt("prepared_warm", func(i int) [2]int64 { return [2]int64{int64(20 + i), int64(60 + i)} }); err != nil {
			return err
		}
		if err := timeStmt("prepared_warm_memo", func(int) [2]int64 { return [2]int64{20, 60} }); err != nil {
			return err
		}
		for _, st := range strategies {
			if st.label == "naive" && n > 5000 {
				continue // quadratic; only measured on the -quick size
			}
			db.SetStrategy(st.s)
			if err := measure("measure_agg", st.label, measureQ, false); err != nil {
				return err
			}
		}
		db.SetStrategy(msql.StrategyDefault)
	}
	if err := runWALBench(&results); err != nil {
		return err
	}
	if err := runShardBench(&results); err != nil {
		return err
	}
	if err := runRollupBench(&results); err != nil {
		return err
	}
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}

// runWALBench measures the durability layer for the -json artifact:
// per-insert latency through the write-ahead log at each fsync policy
// against an in-memory baseline (EXPERIMENTS.md E28's steady-state
// overhead), and cold-start recovery time over the directory the
// insert workload just wrote.
func runWALBench(results *[]benchResult) error {
	n := 1000
	if *quick {
		n = 250
	}
	insertLoop := func(db *msql.DB) ([]time.Duration, error) {
		if err := db.Exec(`CREATE TABLE bench_wal (a INTEGER, b VARCHAR)`); err != nil {
			return nil, err
		}
		durs := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			sql := fmt.Sprintf(`INSERT INTO bench_wal VALUES (%d, 'row')`, i)
			start := time.Now()
			if err := db.Exec(sql); err != nil {
				return nil, err
			}
			durs = append(durs, time.Since(start))
		}
		return durs, nil
	}
	row := func(name, strategy string, durs []time.Duration) {
		p50, p95, p99 := quantiles(durs)
		*results = append(*results, benchResult{
			Name: name, Strategy: strategy, Workers: 1, Orders: n,
			NsOp:  minDur(durs).Nanoseconds(),
			P50Ns: p50.Nanoseconds(), P95Ns: p95.Nanoseconds(), P99Ns: p99.Nanoseconds(),
			Rows: n,
		})
	}

	memDurs, err := insertLoop(msql.Open())
	if err != nil {
		return err
	}
	row("mem_insert", "none", memDurs)

	policies := []string{"always", "interval", "off"}
	if *walSyncFlag != "" {
		policies = []string{*walSyncFlag}
	}
	for _, pol := range policies {
		p, err := msql.ParseSyncPolicy(pol)
		if err != nil {
			return fmt.Errorf("-wal-sync: %v", err)
		}
		dir := *dataDir
		if dir == "" {
			dir, err = os.MkdirTemp("", "msqlbench-wal-"+pol+"-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
		} else {
			dir = filepath.Join(dir, "bench-"+pol)
		}
		db, err := msql.OpenDir(dir, msql.WithSyncPolicy(p))
		if err != nil {
			return err
		}
		durs, err := insertLoop(db)
		if err != nil {
			return err
		}
		row("wal_insert", pol, durs)
		if err := db.Close(); err != nil {
			return err
		}
		// Cold-start recovery of the directory the workload wrote.
		var recDurs []time.Duration
		for i := 0; i < 3; i++ {
			start := time.Now()
			db2, err := msql.OpenDir(dir, msql.WithSyncPolicy(p))
			if err != nil {
				return err
			}
			recDurs = append(recDurs, time.Since(start))
			got := db2.MustQuery(`SELECT COUNT(*) FROM bench_wal`).Rows[0][0].I
			db2.Close()
			if got != int64(n) {
				return fmt.Errorf("recovery under %s found %d rows, want %d", pol, got, n)
			}
		}
		row("recovery", pol, recDurs)
	}
	return nil
}

// runRollupBench appends the rollup_* rows to the -json artifact:
// the single-key dashboard query over a 50k-row table with the lattice
// off, on, and on-while-mutating (an INSERT batch between every timed
// rep). EXPERIMENTS.md E30's machine-readable side.
func runRollupBench(results *[]benchResult) error {
	n := 50000
	if *quick {
		n = 5000
	}
	const reps = 9
	dashQ := `SELECT prodName, COUNT(*) AS cnt, SUM(revenue) AS rev,
	                 SUM(revenue - cost) AS profit
	          FROM Orders GROUP BY prodName`
	db := loadSynthetic(n, 100, 0)
	row := func(name string, durs []time.Duration) error {
		res, err := db.Query(dashQ)
		if err != nil {
			return err
		}
		p50, p95, p99 := quantiles(durs)
		*results = append(*results, benchResult{
			Name: name, Strategy: "none", Workers: 1, Orders: n,
			NsOp:  minDur(durs).Nanoseconds(),
			P50Ns: p50.Nanoseconds(), P95Ns: p95.Nanoseconds(), P99Ns: p99.Nanoseconds(),
			Rows: len(res.Rows),
		})
		return nil
	}
	if err := row("rollup_off", timeQueryDist(db, dashQ, reps)); err != nil {
		return err
	}
	db.SetRollups(true)
	if err := row("rollup_on", timeQueryDist(db, dashQ, reps)); err != nil {
		return err
	}
	mutDurs := make([]time.Duration, reps)
	for i := range mutDurs {
		if err := db.Exec(rollupInsertBatch(i, 20)); err != nil {
			return err
		}
		start := time.Now()
		if _, err := db.Query(dashQ); err != nil {
			return err
		}
		mutDurs[i] = time.Since(start)
	}
	if err := row("rollup_mutating", mutDurs); err != nil {
		return err
	}
	if st := db.RollupStats(); st.Hits == 0 {
		return fmt.Errorf("rollup bench recorded no lattice hits: %+v", st)
	}
	db.SetRollups(false)
	return nil
}

// ---------------------------------------------------------------------------
// helpers

func listing12Forms() map[string]string {
	return map[string]string{
		"correlated": `
			SELECT o.prodName, o.orderDate FROM Orders AS o
			WHERE o.revenue > (SELECT AVG(revenue) FROM Orders AS o1
			                   WHERE o1.prodName = o.prodName)`,
		"selfjoin": `
			SELECT o.prodName, o.orderDate FROM Orders AS o
			LEFT JOIN (SELECT prodName, AVG(revenue) AS avgRevenue
			           FROM Orders GROUP BY prodName) AS o2
			  ON o.prodName = o2.prodName
			WHERE o.revenue > o2.avgRevenue`,
		"window": `
			SELECT o.prodName, o.orderDate
			FROM (SELECT prodName, revenue, orderDate,
			             AVG(revenue) OVER (PARTITION BY prodName) AS avgRevenue
			      FROM Orders) AS o
			WHERE o.revenue > o.avgRevenue`,
		"measure": `
			SELECT o.prodName, o.orderDate
			FROM (SELECT prodName, orderDate, revenue,
			             AVG(revenue) AS MEASURE avgRevenue
			      FROM Orders) AS o
			WHERE o.revenue > o.avgRevenue AT (WHERE prodName = o.prodName)`,
	}
}

func loadSynthetic(orders, products int, nullFrac float64) *msql.DB {
	db := msql.Open()
	db.MustExec(datagen.SetupSQL)
	cfg := datagen.Config{
		Seed: 11, Customers: 100, Products: products, Orders: orders,
		Years: 3, NullProductFraction: nullFrac,
	}
	ds := datagen.Generate(cfg)
	if err := db.InsertRows("Customers", ds.Customers); err != nil {
		panic(err)
	}
	if err := db.InsertRows("Orders", ds.Orders); err != nil {
		panic(err)
	}
	db.SetWorkers(*workers)
	return register(db)
}

// timeQueryDist runs sql reps times after one warmup and returns every
// per-run duration, for percentile reporting.
func timeQueryDist(db *msql.DB, sql string, reps int) []time.Duration {
	if _, err := db.Query(sql); err != nil {
		panic(err)
	}
	durs := make([]time.Duration, reps)
	for i := range durs {
		start := time.Now()
		if _, err := db.Query(sql); err != nil {
			panic(err)
		}
		durs[i] = time.Since(start)
	}
	return durs
}

// quantiles reports the p50/p95/p99 of a latency sample (nearest-rank).
func quantiles(durs []time.Duration) (p50, p95, p99 time.Duration) {
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	q := func(p float64) time.Duration {
		i := int(p*float64(len(sorted)-1) + 0.5)
		return sorted[i]
	}
	return q(0.50), q(0.95), q(0.99)
}

func minDur(durs []time.Duration) time.Duration {
	best := durs[0]
	for _, d := range durs[1:] {
		if d < best {
			best = d
		}
	}
	return best
}

func timeQuery(db *msql.DB, sql string) time.Duration {
	// One warmup, then the median of three runs.
	if _, err := db.Query(sql); err != nil {
		panic(err)
	}
	var best time.Duration
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := db.Query(sql); err != nil {
			panic(err)
		}
		d := time.Since(start)
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

func signature(res *msql.Result) []string {
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func tokenCount(sql string) int {
	toks, err := lexer.Tokenize(sql)
	if err != nil {
		panic(err)
	}
	return len(toks) - 1
}

// eSemantics spot-checks the semantic claims that the test suite covers
// exhaustively (msql/measures_test.go, msql/property_test.go), so a
// harness run alone demonstrates every experiment in EXPERIMENTS.md.
func eSemantics() error {
	db := paperDB()
	check := func(label, sql, want string) error {
		res, err := db.Query(sql)
		if err != nil {
			return fmt.Errorf("%s: %v", label, err)
		}
		got := strings.Join(signature(res), " ; ")
		status := "PASS"
		if got != want {
			status = "FAIL (got " + got + ", want " + want + ")"
		}
		fmt.Printf("  %-52s %s\n", label, status)
		if got != want {
			return fmt.Errorf("%s failed", label)
		}
		return nil
	}

	checks := []struct{ label, sql, want string }{
		{"E18: AGGREGATE(m) = EVAL(m AT (VISIBLE))",
			`SELECT AGGREGATE(rev) = EVAL(rev AT (VISIBLE)) AS eq
			 FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS o
			 WHERE custName <> 'Bob'`,
			"TRUE"},
		{"E18: AT (m1 m2) = (AT m2) AT (m1)",
			`SELECT MIN(CASE WHEN a IS NOT DISTINCT FROM b THEN 1 ELSE 0 END) AS eq FROM (
			   SELECT prodName,
			     rev AT (ALL prodName SET custName = 'Alice') AS a,
			     rev AT (SET custName = 'Alice') AT (ALL prodName) AS b
			   FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS o
			   GROUP BY prodName) AS t`,
			"1"},
		{"E16: sibling measure composition",
			`SELECT ROUND(AGGREGATE(margin), 2) AS m
			 FROM (SELECT *, SUM(revenue) AS MEASURE r, SUM(cost) AS MEASURE c,
			              (r - c) / r AS MEASURE margin FROM Orders) AS o
			 WHERE prodName = 'Acme' GROUP BY prodName`,
			"0.6"},
		{"E17: semi-additive grand total (ARG_MAX then SUM)",
			`WITH LastSnap AS (SELECT 'p' AS k, ARG_MAX(revenue, orderDate) AS lastRev
			                   FROM Orders GROUP BY prodName)
			 SELECT COUNT(*) FROM LastSnap`,
			"3"},
		{"E20: strategy equivalence (spot check)",
			`SELECT COUNT(*) FROM (
			   SELECT prodName, AGGREGATE(rev) AS r
			   FROM (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders) AS o
			   GROUP BY prodName) AS t`,
			"3"},
	}
	for _, c := range checks {
		if err := check(c.label, c.sql, c.want); err != nil {
			return err
		}
	}

	// E15: the hologram property — hidden columns are unaddressable.
	db.MustExec(`CREATE VIEW Hol AS
		SELECT prodName, SUM(revenue) AS MEASURE m FROM Orders`)
	_, err := db.Query(`SELECT prodName, m AT (SET custName = 'Bob') AS v FROM Hol GROUP BY prodName`)
	if err == nil {
		fmt.Println("  E15: hidden dimensions unaddressable                FAIL")
		return fmt.Errorf("hologram: hidden column was addressable")
	}
	fmt.Println("  E15: hidden dimensions unaddressable                PASS")
	fmt.Println("  (full property-based versions: go test ./msql/)")
	return nil
}
