package main

// Process-level crash chaos: build the real msqld binary, run it on a
// durable data directory, hammer it with concurrent inserts, and
// SIGKILL it mid-workload — repeatedly. After every hard kill the
// restarted server must recover the directory and still hold every
// insert it acknowledged (wal-sync=always), and /healthz must gate
// traffic until recovery completes. The final cycle exits via SIGTERM
// to confirm the graceful path still drains and flushes the WAL.
//
// MSQL_CRASH_CYCLES overrides the kill/restart count (default 3; a
// nightly soak can run dozens).

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"github.com/measures-sql/msql/msql/client"
)

func crashCycles() int {
	if s := os.Getenv("MSQL_CRASH_CYCLES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 3
}

// freeAddr reserves an ephemeral port and releases it for msqld to
// claim. The tiny window between Close and the daemon's Listen is
// acceptable in a test.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// waitHealthy polls /healthz until the recovery gate opens (200). 503
// responses while the server replays its log are the gate working.
func waitHealthy(t *testing.T, baseURL string, cmd *exec.Cmd, stderr *bytes.Buffer) {
	t.Helper()
	hc := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := hc.Get(baseURL + "/healthz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatalf("msqld never became healthy; stderr:\n%s", stderr.String())
}

func rowInt(t *testing.T, v any) int64 {
	t.Helper()
	switch x := v.(type) {
	case int64:
		return x
	case float64:
		return int64(x)
	default:
		t.Fatalf("unexpected wire value %T %v", v, v)
		return 0
	}
}

func TestCrashRestartDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and hard-kills a real msqld; skipped with -short")
	}
	bin := filepath.Join(t.TempDir(), "msqld")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building msqld: %v\n%s", err, out)
	}

	dataDir := t.TempDir()
	addr := freeAddr(t)
	baseURL := "http://" + addr

	var (
		ackedMu sync.Mutex
		acked   = map[int64]bool{} // values whose INSERT got HTTP 200
		nextVal atomic.Int64
	)

	start := func() (*exec.Cmd, *bytes.Buffer) {
		var stderr bytes.Buffer
		cmd := exec.Command(bin,
			"-data-dir", dataDir, "-wal-sync", "always",
			"-addr", addr, "-no-access-log")
		cmd.Stderr = &stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting msqld: %v", err)
		}
		waitHealthy(t, baseURL, cmd, &stderr)
		return cmd, &stderr
	}

	// verifyRecovered asserts every acknowledged value survived into
	// the running server.
	verifyRecovered := func(c *client.Client, cycle int) {
		res, err := c.Query(context.Background(), `SELECT a FROM kv ORDER BY a`)
		if err != nil {
			t.Fatalf("cycle %d: reading recovered table: %v", cycle, err)
		}
		have := make(map[int64]bool, len(res.Rows))
		for _, row := range res.Rows {
			have[rowInt(t, row[0])] = true
		}
		ackedMu.Lock()
		defer ackedMu.Unlock()
		for v := range acked {
			if !have[v] {
				t.Fatalf("cycle %d: acknowledged insert %d lost across hard kill (recovered %d rows, acked %d)",
					cycle, v, len(have), len(acked))
			}
		}
		t.Logf("cycle %d: recovered %d rows, all %d acknowledged inserts present", cycle, len(have), len(acked))
	}

	cycles := crashCycles()
	for cycle := 0; cycle < cycles; cycle++ {
		cmd, stderr := start()
		c := client.New(baseURL)
		if cycle == 0 {
			if _, err := c.Query(context.Background(), `CREATE TABLE kv (a INTEGER)`); err != nil {
				t.Fatalf("create table: %v", err)
			}
		} else {
			verifyRecovered(c, cycle)
		}

		// Concurrent inserters; each 200 response records the value as
		// durably acknowledged. Errors after the kill are expected.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				wc := client.New(baseURL)
				for {
					select {
					case <-stop:
						return
					default:
					}
					v := nextVal.Add(1)
					sql := fmt.Sprintf(`INSERT INTO kv VALUES (%d)`, v)
					if _, err := wc.Query(context.Background(), sql); err == nil {
						ackedMu.Lock()
						acked[v] = true
						ackedMu.Unlock()
					}
				}
			}()
		}
		time.Sleep(200 * time.Millisecond)

		if cycle == cycles-1 {
			// Last cycle: graceful SIGTERM must drain and flush cleanly.
			close(stop)
			wg.Wait()
			if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
				t.Fatal(err)
			}
			if err := cmd.Wait(); err != nil {
				t.Fatalf("graceful shutdown: %v\n%s", err, stderr.String())
			}
		} else {
			// Hard kill mid-workload: the inserters are still firing.
			if err := cmd.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			close(stop)
			wg.Wait()
			cmd.Wait() // reaps; exit status is the kill, not an error to us
		}
	}

	// One final recovery over everything, including the graceful tail.
	cmd, _ := start()
	c := client.New(baseURL)
	verifyRecovered(c, cycles)
	ackedMu.Lock()
	total := len(acked)
	ackedMu.Unlock()
	if total == 0 {
		t.Fatal("no insert was ever acknowledged; the chaos exercised nothing")
	}
	cmd.Process.Signal(syscall.SIGTERM)
	cmd.Wait()
}
