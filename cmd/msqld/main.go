// Command msqld serves a measures-enabled SQL database over HTTP with
// fleet-grade robustness: bounded admission, overload shedding
// (429 + Retry-After), per-request deadline clamping, panic isolation,
// health endpoints, Prometheus metrics, and graceful drain on
// SIGINT/SIGTERM.
//
//	msqld -paper                       # serve the paper's dataset
//	msqld -f schema.sql -addr :7433    # serve a custom schema
//
// Endpoints:
//
//	POST /query          {"sql": "...", "timeout_ms": 1000}
//	POST /query.ndjson   newline-delimited response stream
//	POST /prepare        {"name": "q", "sql": "SELECT ... WHERE a > $1"}
//	POST /execute        {"name": "q", "params": [{"type":"INTEGER","value":3}]}
//	GET  /healthz        liveness
//	GET  /readyz         readiness (503 while draining)
//	GET  /metrics        Prometheus text (engine + server counters)
//	GET  /metrics.json   the same snapshot as JSON
//	GET  /statements     statement-stats store (fingerprints, latencies)
//	GET  /queries        in-flight queries
//	POST /kill           {"id": N} — cancel an in-flight query
//	     /debug/pprof/   profiling handlers (with -pprof)
//
// Every statement-executing request is written to the structured
// access log on stderr with its request ID (client-supplied via the
// X-Request-Id header or request_id body field, else generated), and
// -slow-query-log additionally logs statements slower than the given
// threshold from inside the engine.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/measures-sql/msql/internal/paperdata"
	"github.com/measures-sql/msql/internal/server"
	"github.com/measures-sql/msql/msql"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7433", "listen address")
		paper        = flag.Bool("paper", false, "preload the paper's example data")
		file         = flag.String("f", "", "run a SQL script before serving (schema/data setup)")
		strategy     = flag.String("strategy", "default", "measure strategy: default | memo | naive")
		workers      = flag.Int("workers", 0, "executor workers per query (0 = one per CPU)")
		maxInflight  = flag.Int("max-inflight", 8, "max concurrently executing statements")
		maxQueue     = flag.Int("max-queue", 0, "max queued statements (0 = 2×max-inflight)")
		queueWait    = flag.Duration("queue-wait", time.Second, "max time a request waits for an execution slot")
		timeout      = flag.Duration("timeout", 10*time.Second, "default per-statement timeout (0 = none)")
		maxTimeout   = flag.Duration("max-timeout", 30*time.Second, "clamp for client-supplied timeouts")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Second, "graceful-drain budget before canceling stragglers")
		maxRows      = flag.Int64("max-rows", 0, "per-statement materialized-row budget (0 = unlimited)")
		planCache    = flag.Int("plan-cache-size", 128, "prepared-statement plan cache entries (0 = disable)")
		rollups      = flag.Bool("rollups", false, "materialize incremental rollup states for eligible aggregations")
		slowQuery    = flag.Duration("slow-query-log", 0, "log statements slower than this to stderr (0 = off)")
		noAccessLog  = flag.Bool("no-access-log", false, "disable the structured access log on stderr")
		pprofOn      = flag.Bool("pprof", false, "mount /debug/pprof/ profiling handlers")
		dataDir      = flag.String("data-dir", "", "durable storage directory (empty = in-memory)")
		walSync      = flag.String("wal-sync", "always", "WAL fsync policy with -data-dir: always | interval | off")
		checkpointIv = flag.Duration("checkpoint-interval", 0, "periodic checkpoint interval with -data-dir (0 = manual only)")
		shardID      = flag.String("shard-id", "", "serve as a shard of a distributed topology under this ID (exposed via /catalog)")
	)
	flag.Parse()
	log.SetPrefix("msqld: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	// The listener comes up immediately, but every request — including
	// /healthz — gets 503 until recovery (and schema setup) completes, so
	// an orchestrator never routes traffic to a msqld that is still
	// replaying its log.
	var handler atomic.Pointer[http.Handler]
	recovering := http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "recovering", http.StatusServiceUnavailable)
	}))
	handler.Store(&recovering)
	httpSrv := &http.Server{Addr: *addr, Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*handler.Load()).ServeHTTP(w, r)
	})}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	var db *msql.DB
	recovered := false
	if *dataDir != "" {
		policy, err := msql.ParseSyncPolicy(*walSync)
		if err != nil {
			log.Fatalf("-wal-sync: %v", err)
		}
		start := time.Now()
		db, err = msql.OpenDir(*dataDir, msql.WithSyncPolicy(policy))
		if err != nil {
			log.Fatalf("opening -data-dir %s: %v", *dataDir, err)
		}
		st := db.WALStats()
		tables, views := db.Tables()
		recovered = len(tables)+len(views) > 0
		log.Printf("recovered %s in %v (%d tables, %d views, %d log records replayed, %d torn bytes truncated, wal-sync=%s)",
			*dataDir, time.Since(start).Round(time.Millisecond), len(tables), len(views),
			st.RecoveredRecords, st.TornTailBytes, policy)
	} else {
		db = msql.Open()
	}
	switch *strategy {
	case "default":
		db.SetStrategy(msql.StrategyDefault)
	case "memo":
		db.SetStrategy(msql.StrategyMemo)
	case "naive":
		db.SetStrategy(msql.StrategyNaive)
	default:
		log.Fatalf("unknown -strategy %q (want default, memo, or naive)", *strategy)
	}
	db.SetWorkers(*workers)
	db.SetLimits(msql.Limits{Timeout: *timeout, MaxRows: *maxRows})
	db.SetPlanCacheSize(*planCache)
	if *rollups {
		db.SetRollups(true)
		log.Printf("materialized rollups enabled")
	}
	if recovered && (*paper || *file != "") {
		// The directory already holds a recovered schema; re-running the
		// setup script would fail on CREATE TABLE.
		log.Printf("data-dir holds existing objects; skipping -paper/-f setup")
	} else {
		if *paper {
			db.MustExec(paperdata.All)
			log.Printf("loaded paper tables (Customers, Orders) and views")
		}
		if *file != "" {
			data, err := os.ReadFile(*file)
			if err != nil {
				log.Fatalf("reading -f script: %v", err)
			}
			if err := db.Exec(string(data)); err != nil {
				log.Fatalf("running -f script: %v", err)
			}
			log.Printf("ran setup script %s", *file)
		}
	}

	if *slowQuery > 0 {
		db.SetSlowQueryLog(os.Stderr, *slowQuery)
		log.Printf("slow-query log enabled (threshold %v)", *slowQuery)
	}

	cfg := server.Config{
		MaxInflight:  *maxInflight,
		MaxQueue:     *maxQueue,
		QueueWait:    *queueWait,
		MaxTimeout:   *maxTimeout,
		DrainTimeout: *drainTimeout,
		EnablePprof:  *pprofOn,
		ShardID:      *shardID,
	}
	if *shardID != "" {
		log.Printf("serving as shard %q", *shardID)
	}
	if !*noAccessLog {
		cfg.AccessLog = os.Stderr
	}
	srv := server.New(db, cfg)
	live := srv.Handler()
	handler.Store(&live) // recovery done: open the gate

	checkpointDone := make(chan struct{})
	if *dataDir != "" && *checkpointIv > 0 {
		ticker := time.NewTicker(*checkpointIv)
		go func() {
			defer ticker.Stop()
			for {
				select {
				case <-checkpointDone:
					return
				case <-ticker.C:
					if err := db.Checkpoint(); err != nil {
						log.Printf("checkpoint: %v", err)
					}
				}
			}
		}()
		log.Printf("checkpointing every %v", *checkpointIv)
	}

	effQueue := *maxQueue
	if effQueue <= 0 {
		effQueue = 2 * *maxInflight
	}
	log.Printf("serving on http://%s (max-inflight %d, queue %d)", *addr, *maxInflight, effQueue)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("received %s; draining (budget %v)", sig, *drainTimeout)
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	}

	start := time.Now()
	srv.Drain(context.Background())
	c := srv.Counters()
	log.Printf("drained in %v (completed %d, canceled %d)", time.Since(start).Round(time.Millisecond), c.Drained, c.DrainKilled)
	if *dataDir != "" {
		close(checkpointDone)
		if err := db.Sync(); err != nil {
			log.Printf("wal sync: %v", err)
		}
		if err := db.Close(); err != nil {
			log.Printf("wal close: %v", err)
		} else {
			log.Printf("wal flushed and closed")
		}
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("http shutdown: %v", err)
	}
	fmt.Fprintln(os.Stderr, "msqld: bye")
}
