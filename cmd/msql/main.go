// Command msql is an interactive shell (and script runner) for the
// measures-enabled SQL engine.
//
//	msql                      # REPL
//	msql -f script.sql        # run a script
//	msql -c "SELECT 1 AS x"   # run one statement
//	msql -paper -c "SELECT prodName, AGGREGATE(profitMargin)
//	                FROM EnhancedOrders GROUP BY prodName"
//
// Meta commands inside the REPL:
//
//	\d              list tables, views, and system tables
//	\expand  <sql>  print the measure-free expansion of a query
//	\explain <sql>  print the logical plan
//	\paper          load the paper's example data and views
//	\gen N          generate a synthetic dataset with N orders
//	\strategy S     set measure strategy: default | memo | naive
//	\q              quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"

	"github.com/measures-sql/msql/internal/datagen"
	"github.com/measures-sql/msql/internal/paperdata"
	"github.com/measures-sql/msql/msql"
)

func main() {
	var (
		file    = flag.String("f", "", "run a SQL script file and exit")
		command = flag.String("c", "", "run one SQL string and exit")
		paper   = flag.Bool("paper", false, "preload the paper's example data")
	)
	flag.Parse()

	db := msql.Open()
	if *paper {
		db.MustExec(paperdata.All)
	}

	switch {
	case *command != "":
		if err := runScript(db, *command); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := runScript(db, string(data)); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	default:
		repl(db)
	}
}

// runScript runs a script under a SIGINT-cancelable context: the first
// Ctrl-C cancels the in-flight statement cooperatively (ErrCanceled);
// a second Ctrl-C falls back to the default handler and kills the
// process.
func runScript(db *msql.DB, sql string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	results, err := db.RunContext(ctx, sql, msql.WithSource("repl"))
	for _, res := range results {
		if res.Rows != nil || len(res.Columns) > 0 {
			fmt.Print(msql.Format(res))
		} else if res.Message != "" {
			fmt.Println(res.Message)
		}
	}
	return err
}

func repl(db *msql.DB) {
	fmt.Println("msql — SQL with measures (type \\q to quit, \\d for objects; Ctrl-C cancels a running statement)")
	// SIGINT cancels the in-flight statement instead of killing the
	// shell: the channel stays subscribed for the whole session and
	// execute wires it to each statement's context.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt)
	defer signal.Stop(sigCh)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "msql> "
	for {
		// Drop any Ctrl-C pressed at the prompt so it cannot cancel the
		// next statement retroactively.
		select {
		case <-sigCh:
		default:
		}
		fmt.Print(prompt)
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if quit := metaCommand(db, trimmed); quit {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.HasSuffix(trimmed, ";") {
			prompt = "  ... "
			continue
		}
		prompt = "msql> "
		sql := buf.String()
		buf.Reset()
		execute(db, sigCh, sql)
	}
}

// execute runs one statement under a context canceled by Ctrl-C, so an
// interrupt stops the statement (ErrCanceled) and returns to the
// prompt instead of killing the process.
func execute(db *msql.DB, sigCh <-chan os.Signal, sql string) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		select {
		case <-sigCh:
			fmt.Println("^C — canceling statement")
			cancel()
		case <-done:
		}
	}()
	results, err := db.RunContext(ctx, sql, msql.WithSource("repl"))
	close(done)
	cancel()
	for _, res := range results {
		if res.Rows != nil || len(res.Columns) > 0 {
			fmt.Print(msql.Format(res))
			fmt.Printf("(%d rows)\n", len(res.Rows))
		} else if res.Message != "" {
			fmt.Println(res.Message)
		} else {
			fmt.Println("ok")
		}
	}
	if err != nil {
		fmt.Println("error:", err)
	}
}

func metaCommand(db *msql.DB, line string) (quit bool) {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch cmd {
	case "\\q", "\\quit":
		return true
	case "\\d":
		tables, views := db.Tables()
		sort.Strings(tables)
		sort.Strings(views)
		for _, t := range tables {
			fmt.Println("table", t)
		}
		for _, v := range views {
			fmt.Println("view ", v)
		}
		for _, v := range db.SystemTables() {
			fmt.Println("system", v)
		}
	case "\\paper":
		if err := db.Exec(paperdata.All); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("loaded paper tables (Customers, Orders) and views")
		}
	case "\\gen":
		n, err := strconv.Atoi(rest)
		if err != nil || n <= 0 {
			fmt.Println("usage: \\gen N   (N = number of orders)")
			return false
		}
		cfg := datagen.DefaultConfig()
		cfg.Orders = n
		ds := datagen.Generate(cfg)
		if err := db.Exec(datagen.SetupSQL); err != nil {
			fmt.Println("error:", err)
			return false
		}
		if err := db.InsertRows("Customers", ds.Customers); err != nil {
			fmt.Println("error:", err)
			return false
		}
		if err := db.InsertRows("Orders", ds.Orders); err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("generated %d customers, %d orders\n", len(ds.Customers), len(ds.Orders))
	case "\\expand":
		out, err := db.Expand(strings.TrimSuffix(rest, ";"))
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println(out)
		}
	case "\\explain":
		out, err := db.Explain(strings.TrimSuffix(rest, ";"))
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Print(out)
		}
	case "\\strategy":
		switch strings.ToLower(rest) {
		case "default":
			db.SetStrategy(msql.StrategyDefault)
		case "memo":
			db.SetStrategy(msql.StrategyMemo)
		case "naive":
			db.SetStrategy(msql.StrategyNaive)
		default:
			fmt.Println("usage: \\strategy default|memo|naive")
			return false
		}
		fmt.Println("strategy set to", strings.ToLower(rest))
	default:
		fmt.Println("unknown command", cmd)
	}
	return false
}
